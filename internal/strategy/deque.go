package strategy

import (
	//lint:ignore cs-only-atomics the work-stealing deque is scheduler infrastructure (like the pool's dynamic counter), not a reduction strategy
	"sync/atomic"
)

// taskQueue is a bounded single-producer multi-consumer ring of task
// ids. One worker owns the queue and is the only pusher; any worker
// (including the owner) may take from the head. It deliberately differs
// from the classic Chase-Lev deque: Chase-Lev's owner-side pop from the
// bottom cannot be combined soundly with multi-item steal-half from the
// top, so here *every* dequeue — owner pop and thief steal alike — goes
// through the same head CAS. The protocol:
//
//   - head and tail are monotonically increasing int64 counters (never
//     wrapped into the ring), so a CAS on head can never ABA.
//   - push: the owner stores the value into buf[tail%cap], then
//     publishes it by incrementing tail. The queue is sized so that a
//     push never overtakes an unclaimed head (capacity >= total tasks);
//     push still reports failure defensively.
//   - take(k): any worker reads head h and tail t, copies the k =
//     min(k, t-h) entries at [h, h+k) into its private buffer, then
//     CASes head h -> h+k. Success proves head was h for the whole
//     read — the copied slots were published and unclaimed, so the
//     values are valid. On failure the copies are discarded and the
//     take retries. A doomed take may read slots the owner is
//     concurrently rewriting, which is why the entries themselves are
//     atomic.Int32: the values read are discarded, but the accesses
//     must stay data-race-free under the race detector.
//
// All operations are lock-free; the owner's push is wait-free.
type taskQueue struct {
	head atomic.Int64
	tail atomic.Int64
	buf  []atomic.Int32
	mask int64
}

// newTaskQueue returns a queue holding at least capacity entries
// (rounded up to a power of two, minimum 2).
func newTaskQueue(capacity int) *taskQueue {
	n := int64(2)
	for n < int64(capacity) {
		n <<= 1
	}
	return &taskQueue{buf: make([]atomic.Int32, n), mask: n - 1}
}

// reset empties the queue. Only safe with no concurrent operations
// (between sweeps, under the pool barrier).
func (q *taskQueue) reset() {
	q.head.Store(0)
	q.tail.Store(0)
}

// push appends v. Only the owning worker may call it. It reports false
// when the ring is full — callers sized the queue so this cannot
// happen, but they fall back to executing v inline rather than
// corrupting the ring.
func (q *taskQueue) push(v int32) bool {
	t := q.tail.Load()
	if t-q.head.Load() >= int64(len(q.buf)) {
		return false
	}
	q.buf[t&q.mask].Store(v)
	q.tail.Store(t + 1)
	return true
}

// size returns a snapshot of the entry count (racy, advisory only).
func (q *taskQueue) size() int64 {
	return q.tail.Load() - q.head.Load()
}

// take claims up to max entries from the head into dst and returns how
// many were claimed. With half set, it claims ceil(size/2) — the
// steal-half policy — otherwise a single entry (the owner's pop).
func (q *taskQueue) take(dst []int32, max int, half bool) int {
	for {
		h := q.head.Load()
		t := q.tail.Load()
		n := t - h
		if n <= 0 {
			return 0
		}
		k := int64(1)
		if half {
			k = (n + 1) / 2
		}
		if k > int64(max) {
			k = int64(max)
		}
		if k > int64(len(dst)) {
			k = int64(len(dst))
		}
		for x := int64(0); x < k; x++ {
			dst[x] = q.buf[(h+x)&q.mask].Load()
		}
		if q.head.CompareAndSwap(h, h+k) {
			return int(k)
		}
	}
}
