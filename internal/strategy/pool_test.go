package strategy

import (
	"sync"
	"testing"
	"time"

	"sdcmd/internal/telemetry"
)

// TestPoolRunAfterClosePanics pins the lifecycle contract: Run on a
// closed pool must fail fast with a panic, never deadlock on the
// retired workers. The timeout guard turns a regression back into the
// old deadlock into a test failure instead of a hung suite.
func TestPoolRunAfterClosePanics(t *testing.T) {
	p := MustNewPool(2)
	p.Close()
	done := make(chan interface{}, 1)
	go func() {
		defer func() { done <- recover() }()
		p.Run(func(int) {})
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatal("Run after Close returned normally; want a panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run after Close hung for 5s — the fail-fast panic regressed to the old deadlock")
	}
}

// TestPoolParallelForAfterClosePanics covers the helpers built on Run.
func TestPoolParallelForAfterClosePanics(t *testing.T) {
	p := MustNewPool(2)
	p.Close()
	for name, call := range map[string]func(){
		"ParallelFor":        func() { p.ParallelFor(8, func(int, int, int) {}) },
		"ParallelForStrided": func() { p.ParallelForStrided(8, func(int, int) {}) },
		"ParallelForDynamic": func() { p.ParallelForDynamic(8, func(int, int) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after Close did not panic", name)
				}
			}()
			call()
		}()
	}
}

// TestPoolRunCloseRace hammers concurrent Run and Close; the dispatch
// mutex must serialize them so no region is half-dispatched when the
// workers exit. Run under -race this also checks the closed-flag
// synchronization.
func TestPoolRunCloseRace(t *testing.T) {
	for i := 0; i < 30; i++ {
		p := MustNewPool(4)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A post-Close Run panics by contract; that ends the loop.
			defer func() { _ = recover() }()
			for {
				p.Run(func(int) {})
			}
		}()
		time.Sleep(500 * time.Microsecond)
		p.Close()
		p.Close() // idempotent
		wg.Wait()
	}
}

// TestPoolCloseWaitsForInflightRun asserts Close blocks until the
// current region joins, so its body never observes dead workers.
func TestPoolCloseWaitsForInflightRun(t *testing.T) {
	p := MustNewPool(3)
	started := make(chan struct{})
	release := make(chan struct{})
	ran := make(chan int, 3)
	go func() {
		p.Run(func(tid int) {
			if tid == 0 {
				close(started)
			}
			<-release
			ran <- tid
		})
	}()
	<-started
	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a region was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the region joined")
	}
	if len(ran) != 3 {
		t.Fatalf("region joined with %d of 3 workers done", len(ran))
	}
}

// TestPoolWorkerTelemetry checks the busy/wait accounting: a
// deliberately imbalanced region must show the idle workers waiting and
// every utilization in (0, 1].
func TestPoolWorkerTelemetry(t *testing.T) {
	rec := telemetry.NewRecorder()
	p := MustNewPool(2)
	defer p.Close()
	p.SetTelemetry(rec)
	for i := 0; i < 3; i++ {
		p.Run(func(tid int) {
			if tid == 0 {
				time.Sleep(20 * time.Millisecond)
			} else {
				time.Sleep(time.Millisecond)
			}
		})
	}
	m := rec.Snapshot()
	if len(m.Workers) != 2 {
		t.Fatalf("got %d worker stats, want 2", len(m.Workers))
	}
	for _, w := range m.Workers {
		if w.BusySeconds <= 0 {
			t.Errorf("worker %d: non-positive busy time %g", w.Worker, w.BusySeconds)
		}
		if w.Utilization <= 0 || w.Utilization > 1 {
			t.Errorf("worker %d: utilization %g outside (0, 1]", w.Worker, w.Utilization)
		}
	}
	// Worker 0 was the slow one: it should be busier and wait less than
	// worker 1.
	if m.Workers[0].BusySeconds <= m.Workers[1].BusySeconds {
		t.Errorf("slow worker busy %g <= fast worker busy %g",
			m.Workers[0].BusySeconds, m.Workers[1].BusySeconds)
	}
	if m.Workers[1].WaitSeconds <= m.Workers[0].WaitSeconds {
		t.Errorf("fast worker wait %g <= slow worker wait %g",
			m.Workers[1].WaitSeconds, m.Workers[0].WaitSeconds)
	}
}
