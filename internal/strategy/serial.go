package strategy

import (
	"sdcmd/internal/neighbor"
	"sdcmd/internal/vec"
)

// serialReducer is the sequential baseline: the exact loop nest of the
// paper's Figs. 1 and 2, with the half-list symmetry and Newton's-third-
// law optimizations of §II.D already applied. Speedups in Table 1 and
// Fig. 9 are measured against this code path.
type serialReducer struct {
	list *neighbor.List
}

func (r *serialReducer) Kind() Kind    { return Serial }
func (r *serialReducer) Threads() int  { return 1 }
func (r *serialReducer) PairWork() int { return r.list.Pairs() }

// WriteShape implements WriteShaper: the sequential sweep writes both
// slots unsynchronized; with one worker no overlap can ever conflict.
func (r *serialReducer) WriteShape() WriteShape { return WriteSharedPair }

func (r *serialReducer) SweepScalar(out []float64, visit ScalarVisit) {
	n := r.list.N()
	for i := 0; i < n; i++ {
		for _, j := range r.list.Neighbors(i) {
			ci, cj := visit(int32(i), j)
			out[i] += ci
			out[j] += cj
		}
	}
}

func (r *serialReducer) SweepVector(out []vec.Vec3, visit VectorVisit) {
	n := r.list.N()
	for i := 0; i < n; i++ {
		for _, j := range r.list.Neighbors(i) {
			f := visit(int32(i), j)
			out[i][0] += f[0]
			out[i][1] += f[1]
			out[i][2] += f[2]
			out[j][0] -= f[0]
			out[j][1] -= f[1]
			out[j][2] -= f[2]
		}
	}
}

func (r *serialReducer) ParallelForAtoms(body func(start, end, tid int)) {
	body(0, r.list.N(), 0)
}
