package strategy

import (
	"sdcmd/internal/neighbor"
	"sdcmd/internal/vec"
)

// rcReducer is Redundant-Computations (the paper's last solution
// class): each thread owns a block of atoms and computes *all* of their
// interactions from a full neighbor list, writing only its own atoms.
// No synchronization at all — but every pair is evaluated twice and the
// full list doubles the neighbor-list memory, which is why Fig. 9 shows
// RC scaling near-linearly yet sitting ≈1.7× below SDC.
type rcReducer struct {
	half *neighbor.List
	full *neighbor.List
	pool *Pool
}

func (r *rcReducer) Kind() Kind   { return RC }
func (r *rcReducer) Threads() int { return r.pool.Threads() }

// PairWork is the doubled pair count: RC's defining cost.
func (r *rcReducer) PairWork() int { return r.full.Pairs() }

// WriteShape implements WriteShaper: each visit contributes only to
// out[i], and the ParallelFor blocks partition i across workers.
func (r *rcReducer) WriteShape() WriteShape { return WriteOwnerOnly }

// FullListBytes reports the extra neighbor-list storage RC carries
// beyond the half list.
func (r *rcReducer) FullListBytes() int {
	return (r.full.Pairs() - r.half.Pairs()) * 4
}

func (r *rcReducer) SweepScalar(out []float64, visit ScalarVisit) {
	r.pool.ParallelFor(r.full.N(), func(start, end, _ int) {
		for i := start; i < end; i++ {
			acc := 0.0
			for _, j := range r.full.Neighbors(i) {
				ci, _ := visit(int32(i), j)
				acc += ci
			}
			out[i] += acc
		}
	})
}

func (r *rcReducer) SweepVector(out []vec.Vec3, visit VectorVisit) {
	r.pool.ParallelFor(r.full.N(), func(start, end, _ int) {
		for i := start; i < end; i++ {
			var acc vec.Vec3
			for _, j := range r.full.Neighbors(i) {
				f := visit(int32(i), j)
				acc[0] += f[0]
				acc[1] += f[1]
				acc[2] += f[2]
			}
			out[i][0] += acc[0]
			out[i][1] += acc[1]
			out[i][2] += acc[2]
		}
	})
}

func (r *rcReducer) ParallelForAtoms(body func(start, end, tid int)) {
	r.pool.ParallelFor(r.full.N(), body)
}
