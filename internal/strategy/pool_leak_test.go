package strategy

import (
	"runtime"
	"testing"
	"time"
)

// settleToGoroutineCount polls until the live goroutine count drops
// back to at most before, failing if it never settles. The generous
// deadline covers race-instrumented runs; the short step keeps the
// common case fast.
func settleToGoroutineCount(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, want <= %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolCloseLeaksNoGoroutines is the dynamic half of the
// goroutine-leak cross-validation (see internal/flow): after Close,
// every worker the pool launched must be gone. The static
// goroutine-leak pass proves the same launches join in
// TestRealRepoShutdownPathsProveClean.
func TestPoolCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	p := MustNewPool(4)
	var cells [64]float64
	p.ParallelFor(len(cells), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			cells[i] += float64(i)
		}
	})
	p.Close()

	settleToGoroutineCount(t, before)
}

// TestPoolRepeatedLifecycleLeaksNoGoroutines stresses the create/use/
// close cycle: worker counts must not ratchet upward across pools.
func TestPoolRepeatedLifecycleLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		p := MustNewPool(3)
		p.ParallelForDynamic(32, func(_, _ int) {})
		p.Close()
	}
	settleToGoroutineCount(t, before)
}
