package strategy

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"sdcmd/internal/vec"
)

// TestTaskedRandomStealSchedule is the randomized steal-schedule
// stress test: the schedule-equivalence theorem says the reduction is
// bit-identical to SDC under ANY work-stealing schedule, so randomized
// victim scans and root deals (seeded, reproducible) must not be able
// to break it. Each worker perturbs its victim order from its own
// seeded source — the hooks exist precisely so the production kernel
// stays rand-free while tests explore interleavings the deterministic
// round-robin scan never produces. Run under -race in CI, this is also
// the dynamic half of the cross-validation contract pinned statically
// by internal/mem's TestStaticCatchesBrokenDeque.
func TestTaskedRandomStealSchedule(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	sc, vc := s.visits()
	n := s.list.N()

	refPool := MustNewPool(2)
	sdc, err := New(Config{Kind: SDC, List: s.list, Pool: refPool, Decomp: s.dec})
	if err != nil {
		t.Fatal(err)
	}
	wantS := make([]float64, n)
	sdc.SweepScalar(wantS, sc)
	wantV := make([]vec.Vec3, n)
	sdc.SweepVector(wantV, vc)
	refPool.Close()

	const threads = 4
	for _, seed := range []int64{1, 7, 42, 1234, 99991} {
		pool := MustNewPool(threads)
		r, err := New(Config{Kind: Tasked, List: s.list, Pool: pool, Decomp: s.dec})
		if err != nil {
			t.Fatal(err)
		}
		tr := r.(*taskedReducer)
		master := rand.New(rand.NewSource(seed))
		// One source per worker: stealOrder runs concurrently on the
		// workers, and worker w only ever touches sources[w].
		sources := make([]*rand.Rand, threads)
		for w := range sources {
			sources[w] = rand.New(rand.NewSource(master.Int63()))
		}
		tr.stealOrder = func(tid int) []int {
			perm := sources[tid].Perm(threads)
			out := make([]int, 0, threads-1)
			for _, v := range perm {
				if v != tid {
					out = append(out, v)
				}
			}
			return out
		}
		rootSrc := rand.New(rand.NewSource(master.Int63()))
		tr.rootShuffle = func(roots []int32) {
			rootSrc.Shuffle(len(roots), func(i, j int) { roots[i], roots[j] = roots[j], roots[i] })
		}

		for rep := 0; rep < 5; rep++ {
			gotS := make([]float64, n)
			r.SweepScalar(gotS, sc)
			gotV := make([]vec.Vec3, n)
			r.SweepVector(gotV, vc)
			for i := 0; i < n; i++ {
				if math.Float64bits(gotS[i]) != math.Float64bits(wantS[i]) {
					t.Fatalf("seed=%d rep=%d: scalar[%d] diverges from SDC under randomized schedule", seed, rep, i)
				}
				for a := 0; a < 3; a++ {
					if math.Float64bits(gotV[i][a]) != math.Float64bits(wantV[i][a]) {
						t.Fatalf("seed=%d rep=%d: vector[%d][%d] diverges from SDC under randomized schedule", seed, rep, i, a)
					}
				}
			}
		}
		if ov := tr.OverlapCount(); ov != 0 {
			t.Fatalf("seed=%d: %d overlaps under randomized schedule: %v", seed, ov, tr.TaskOverlaps())
		}
		pool.Close()
	}
}

// brokenDeque reproduces, in executable form, the two publication bugs
// seeded in internal/mem's brokendeque fixture: pushBug publishes tail
// before the slot write; stealBug reads a slot before loading the
// bounds that publish it. Slots are atomic so the race detector stays
// quiet about the individual accesses — the bug is the protocol order,
// observable as a stale (zero) sentinel where a published value must
// be nonzero.
type brokenDeque struct {
	head atomic.Int64
	tail atomic.Int64
	buf  []atomic.Int32
	mask int64
}

func newBrokenDeque(n int) *brokenDeque {
	return &brokenDeque{buf: make([]atomic.Int32, n), mask: int64(n - 1)}
}

// pushBug publishes the incremented tail first, then yields to widen
// the window before the slot write lands.
func (d *brokenDeque) pushBug(v int32) {
	t := d.tail.Load()
	d.tail.Store(t + 1)
	runtime.Gosched()
	d.buf[t&d.mask].Store(v)
}

// pushOK is the correct producer order, used to isolate the
// consumer-side bug.
func (d *brokenDeque) pushOK(v int32) {
	t := d.tail.Load()
	d.buf[t&d.mask].Store(v)
	d.tail.Store(t + 1)
}

// stealOK is the correct consumer order, used to isolate the
// producer-side bug.
func (d *brokenDeque) stealOK() (int32, bool) {
	h := d.head.Load()
	t := d.tail.Load()
	if h >= t {
		return 0, false
	}
	v := d.buf[h&d.mask].Load()
	if d.head.CompareAndSwap(h, h+1) {
		return v, true
	}
	return 0, false
}

// stealBug copies the slot before loading the bounds that publish it.
func (d *brokenDeque) stealBug() (int32, bool) {
	h := d.head.Load()
	v := d.buf[h&d.mask].Load()
	runtime.Gosched()
	t := d.tail.Load()
	if h >= t {
		return 0, false
	}
	if d.head.CompareAndSwap(h, h+1) {
		return v, true
	}
	return 0, false
}

// TestBrokenDequeCaughtDynamically is the dynamic half of the
// static ⊇ dynamic cross-validation: both publication bugs the
// publication-safety pass flags on the brokendeque fixture must also
// be observable at runtime. Pushed values are all nonzero, so a thief
// that returns zero read a slot the protocol had not published.
func TestBrokenDequeCaughtDynamically(t *testing.T) {
	run := func(name string, push func(*brokenDeque, int32), steal func(*brokenDeque) (int32, bool)) {
		t.Run(name, func(t *testing.T) {
			const cap, rounds = 64, 20000
			for round := 0; round < rounds; round++ {
				d := newBrokenDeque(cap)
				done := make(chan struct{})
				ready := make(chan struct{})
				var stale atomic.Bool
				go func() {
					defer close(done)
					close(ready) // thief is running before the first push
					for taken := 0; taken < cap; {
						v, ok := steal(d)
						if !ok {
							runtime.Gosched()
							continue
						}
						if v == 0 {
							stale.Store(true)
						}
						taken++
					}
				}()
				<-ready
				for i := 1; i <= cap; i++ {
					push(d, int32(i))
					// Yield between pushes so the thief interleaves at the
					// frontier, where the stale window opens.
					runtime.Gosched()
				}
				<-done
				if stale.Load() {
					return // bug observed: dynamic detector caught it
				}
			}
			t.Fatalf("%s: publication bug never observed in %d rounds — dynamic coverage lost", name, rounds)
		})
	}
	run("producer-publishes-before-write", (*brokenDeque).pushBug, (*brokenDeque).stealOK)
	run("consumer-reads-before-load", (*brokenDeque).pushOK, (*brokenDeque).stealBug)
}
