package strategy

import (
	"errors"
	"sync"
	"testing"

	"sdcmd/internal/neighbor"
	"sdcmd/internal/vec"
)

// uncoloredReducer is the seeded-race fixture: it distributes atoms in
// contiguous blocks over the pool workers and writes both pair slots —
// SDC's write pattern with the coloring removed, so same-phase write
// sets of different workers overlap at every block boundary. The
// memory accesses themselves are mutex-protected, keeping the Go race
// detector silent: what is violated is the declared shared-pair
// discipline, which is exactly what CheckedReducer must catch.
type uncoloredReducer struct {
	list *neighbor.List
	pool *Pool
	mu   sync.Mutex
}

func (r *uncoloredReducer) Kind() Kind             { return SDC }
func (r *uncoloredReducer) Threads() int           { return r.pool.Threads() }
func (r *uncoloredReducer) PairWork() int          { return r.list.Pairs() }
func (r *uncoloredReducer) WriteShape() WriteShape { return WriteSharedPair }

func (r *uncoloredReducer) SweepScalar(out []float64, visit ScalarVisit) {
	r.pool.ParallelFor(r.list.N(), func(start, end, _ int) {
		for i := start; i < end; i++ {
			for _, j := range r.list.Neighbors(i) {
				ci, cj := visit(int32(i), j)
				r.mu.Lock()
				out[i] += ci
				out[j] += cj
				r.mu.Unlock()
			}
		}
	})
}

func (r *uncoloredReducer) SweepVector(out []vec.Vec3, visit VectorVisit) {
	r.pool.ParallelFor(r.list.N(), func(start, end, _ int) {
		for i := start; i < end; i++ {
			for _, j := range r.list.Neighbors(i) {
				f := visit(int32(i), j)
				r.mu.Lock()
				out[i][0] += f[0]
				out[i][1] += f[1]
				out[i][2] += f[2]
				out[j][0] -= f[0]
				out[j][1] -= f[1]
				out[j][2] -= f[2]
				r.mu.Unlock()
			}
		}
	})
}

func (r *uncoloredReducer) ParallelForAtoms(body func(start, end, tid int)) {
	r.pool.ParallelFor(r.list.N(), body)
}

func TestCheckedReducerDetectsSeededRace(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	pool := MustNewPool(4)
	defer pool.Close()
	bad := &uncoloredReducer{list: s.list, pool: pool}
	chk := NewCheckedReducer(bad)
	if chk.Shape() != WriteSharedPair {
		t.Fatalf("shape %v, want shared-pair", chk.Shape())
	}
	sc, vc := s.visits()

	// The sweep must still compute the right answer while being checked.
	want := make([]float64, s.list.N())
	(&serialReducer{list: s.list}).SweepScalar(want, sc)
	got := make([]float64, s.list.N())
	chk.SweepScalar(got, sc)
	for i := range want {
		if d := got[i] - want[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("checked sweep corrupted result at %d: %g vs %g", i, got[i], want[i])
		}
	}

	conflicts := chk.Conflicts()
	if len(conflicts) == 0 {
		t.Fatal("uncolored block schedule produced no conflicts — the check is blind")
	}
	if err := chk.Err(); err == nil {
		t.Fatal("Err() nil despite conflicts")
	}
	for k := 1; k < len(conflicts); k++ {
		a, b := conflicts[k-1], conflicts[k]
		if a.Sweep > b.Sweep || (a.Sweep == b.Sweep && a.Phase > b.Phase) ||
			(a.Sweep == b.Sweep && a.Phase == b.Phase && a.Slot >= b.Slot) {
			t.Fatalf("conflicts not strictly ordered: %v before %v", a, b)
		}
	}
	for _, c := range conflicts {
		if c.FirstWorker == c.SecondWorker {
			t.Fatalf("self-conflict reported: %v", c)
		}
		if c.Kind != "scalar" {
			t.Fatalf("conflict from wrong sweep kind: %v", c)
		}
	}

	// The vector sweep races the same way.
	chk.Reset()
	if chk.Err() != nil {
		t.Fatal("Reset did not clear conflicts")
	}
	chk.SweepVector(make([]vec.Vec3, s.list.N()), vc)
	if len(chk.Conflicts()) == 0 {
		t.Fatal("vector sweep conflicts missed")
	}
}

// TestCheckedReducerCleanStrategies is the dynamic half of the paper's
// §II.B claim: all four parallel strategies (and serial) run full
// scalar+vector sweeps under the checker with zero conflicts, and the
// checked sweeps still produce the serial answer. Legal SDC passing at
// threads > 1 also proves the phase hook works: without the per-color
// phase advance, boundary atoms written in different colors would be
// false positives.
func TestCheckedReducerCleanStrategies(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	sc, vc := s.visits()
	wantS := make([]float64, s.list.N())
	(&serialReducer{list: s.list}).SweepScalar(wantS, sc)
	wantV := make([]vec.Vec3, s.list.N())
	(&serialReducer{list: s.list}).SweepVector(wantV, vc)

	wantShape := map[Kind]WriteShape{
		Serial:   WriteSharedPair,
		SDC:      WriteSharedPair,
		CS:       WriteSyncedPair,
		AtomicCS: WriteSyncedPair,
		SAP:      WritePrivatePair,
		RC:       WriteOwnerOnly,
		Tasked:   WriteDepOrderedPair,
	}
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			r, pool := buildReducer(t, s, k, 4)
			if pool != nil {
				defer pool.Close()
			}
			chk := NewCheckedReducer(r)
			if chk.Shape() != wantShape[k] {
				t.Fatalf("shape %v, want %v", chk.Shape(), wantShape[k])
			}
			if chk.Kind() != k || chk.Threads() != r.Threads() || chk.PairWork() != r.PairWork() {
				t.Fatal("delegated accessors disagree with the wrapped reducer")
			}
			gotS := make([]float64, s.list.N())
			chk.SweepScalar(gotS, sc)
			gotV := make([]vec.Vec3, s.list.N())
			chk.SweepVector(gotV, vc)
			for i := range wantS {
				if d := gotS[i] - wantS[i]; d > 1e-9 || d < -1e-9 {
					t.Fatalf("scalar mismatch at %d: %g vs %g", i, gotS[i], wantS[i])
				}
				for a := 0; a < 3; a++ {
					if d := gotV[i][a] - wantV[i][a]; d > 1e-9 || d < -1e-9 {
						t.Fatalf("vector mismatch at %d[%d]: %g vs %g", i, a, gotV[i][a], wantV[i][a])
					}
				}
			}
			if err := chk.Err(); err != nil {
				t.Fatalf("clean %v strategy flagged: %v", k, err)
			}
		})
	}
}

// shapelessReducer hides any WriteShaper declaration of the wrapped
// reducer: the embedded interface's method set carries Reducer only.
type shapelessReducer struct{ Reducer }

func TestCheckedReducerDefaultsConservative(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	r, pool := buildReducer(t, s, SAP, 2)
	defer pool.Close()
	chk := NewCheckedReducer(shapelessReducer{r})
	if chk.Shape() != WriteSharedPair {
		t.Fatalf("undeclared shape resolved to %v, want conservative shared-pair", chk.Shape())
	}
}

func TestCheckedReducerEmbeddingPhase(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	r, pool := buildReducer(t, s, SDC, 3)
	defer pool.Close()
	chk := NewCheckedReducer(r)
	var mu sync.Mutex
	covered := make([]bool, s.list.N())
	chk.ParallelForAtoms(func(start, end, _ int) {
		mu.Lock()
		for i := start; i < end; i++ {
			covered[i] = true
		}
		mu.Unlock()
	})
	for i, ok := range covered {
		if !ok {
			t.Fatalf("atom %d not covered by ParallelForAtoms", i)
		}
	}
	if chk.Err() != nil {
		t.Fatal("embedding phase must not record conflicts")
	}
}

func TestAuditNeedHalfListTyped(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	full := s.list.ToFull()
	_, err := AuditSDCSchedule(s.dec, full, 4)
	if !errors.Is(err, ErrNeedHalfList) {
		t.Fatalf("full-list audit error %v, want errors.Is ErrNeedHalfList", err)
	}
}
