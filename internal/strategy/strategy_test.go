package strategy

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"sdcmd/internal/box"
	"sdcmd/internal/core"
	"sdcmd/internal/lattice"
	"sdcmd/internal/neighbor"
	"sdcmd/internal/vec"
)

// testSystem bundles everything the reducers need.
type testSystem struct {
	bx   box.Box
	pos  []vec.Vec3
	list *neighbor.List
	dec  *core.Decomposition
}

func newTestSystem(t *testing.T, cells int, reach float64) *testSystem {
	t.Helper()
	cfg := lattice.MustBuild(lattice.BCC, cells, cells, cells, 2.8665)
	cfg.Jitter(0.08, 42)
	list, err := neighbor.Builder{Cutoff: reach - 0.5, Skin: 0.5, Half: true}.Build(cfg.Box, cfg.Pos)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompose(cfg.Box, cfg.Pos, core.Dim2, reach)
	if err != nil {
		t.Fatal(err)
	}
	return &testSystem{bx: cfg.Box, pos: cfg.Pos, list: list, dec: dec}
}

// visits returns geometry-derived test kernels: a scalar "density-like"
// pair term and an antisymmetric vector term, both real functions of
// the minimum-image distance so mistakes in pair handling change sums.
func (s *testSystem) visits() (ScalarVisit, VectorVisit) {
	sc := func(i, j int32) (float64, float64) {
		d := s.bx.MinImage(s.pos[i], s.pos[j])
		r := d.Norm()
		v := math.Exp(-r)
		return v, v
	}
	vc := func(i, j int32) vec.Vec3 {
		d := s.bx.MinImage(s.pos[i], s.pos[j])
		r2 := d.Norm2()
		return d.Scale(1 / (1 + r2))
	}
	return sc, vc
}

func buildReducer(t *testing.T, s *testSystem, k Kind, threads int) (Reducer, *Pool) {
	t.Helper()
	var pool *Pool
	if k != Serial {
		pool = MustNewPool(threads)
	}
	r, err := New(Config{Kind: k, List: s.list, Pool: pool, Decomp: s.dec})
	if err != nil {
		t.Fatal(err)
	}
	return r, pool
}

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range Kinds {
		s := k.String()
		got, err := ParseKind(s)
		if err != nil || got != k {
			t.Errorf("round trip %v: %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string wrong")
	}
	if got, err := ParseKind(" SDC "); err != nil || got != SDC {
		t.Error("ParseKind must be case/space insensitive")
	}
}

func TestNewValidation(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	pool := MustNewPool(2)
	defer pool.Close()

	if _, err := New(Config{Kind: SDC, List: nil, Pool: pool, Decomp: s.dec}); err == nil {
		t.Error("nil list accepted")
	}
	full := s.list.ToFull()
	if _, err := New(Config{Kind: Serial, List: full}); err == nil {
		t.Error("full list accepted")
	}
	if _, err := New(Config{Kind: SDC, List: s.list, Pool: nil, Decomp: s.dec}); err == nil {
		t.Error("nil pool accepted for parallel kind")
	}
	if _, err := New(Config{Kind: SDC, List: s.list, Pool: pool, Decomp: nil}); err == nil {
		t.Error("SDC without decomposition accepted")
	}
	if _, err := New(Config{Kind: Kind(77), List: s.list, Pool: pool}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Reach too small for the list: coloring would be unsafe.
	badDec, err := core.Decompose(s.bx, s.pos, core.Dim2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Kind: SDC, List: s.list, Pool: pool, Decomp: badDec}); err == nil {
		t.Error("undersized decomposition reach accepted")
	}
	// Serial needs no pool.
	if _, err := New(Config{Kind: Serial, List: s.list}); err != nil {
		t.Errorf("serial without pool rejected: %v", err)
	}
}

func TestAllStrategiesMatchSerial(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	sc, vc := s.visits()
	n := s.list.N()

	ref, _ := buildReducer(t, s, Serial, 1)
	wantScalar := make([]float64, n)
	ref.SweepScalar(wantScalar, sc)
	wantVector := make([]vec.Vec3, n)
	ref.SweepVector(wantVector, vc)

	for _, k := range []Kind{SDC, CS, AtomicCS, SAP, RC, Tasked} {
		for _, threads := range []int{1, 2, 3, 4, 7} {
			r, pool := buildReducer(t, s, k, threads)
			gotScalar := make([]float64, n)
			r.SweepScalar(gotScalar, sc)
			gotVector := make([]vec.Vec3, n)
			r.SweepVector(gotVector, vc)
			if pool != nil {
				pool.Close()
			}
			for i := 0; i < n; i++ {
				if math.Abs(gotScalar[i]-wantScalar[i]) > 1e-10*(1+math.Abs(wantScalar[i])) {
					t.Fatalf("%v/%d threads: scalar[%d] = %g, want %g", k, threads, i, gotScalar[i], wantScalar[i])
				}
				if !gotVector[i].ApproxEqual(wantVector[i], 1e-10*(1+wantVector[i].Norm())) {
					t.Fatalf("%v/%d threads: vector[%d] = %v, want %v", k, threads, i, gotVector[i], wantVector[i])
				}
			}
		}
	}
}

func TestSweepsAccumulate(t *testing.T) {
	// Sweeps must add into out, not overwrite it.
	s := newTestSystem(t, 6, 4.0)
	sc, _ := s.visits()
	r, _ := buildReducer(t, s, Serial, 1)
	out := make([]float64, s.list.N())
	r.SweepScalar(out, sc)
	first := append([]float64(nil), out...)
	r.SweepScalar(out, sc)
	for i := range out {
		if math.Abs(out[i]-2*first[i]) > 1e-12*(1+math.Abs(out[i])) {
			t.Fatalf("second sweep did not accumulate at %d", i)
		}
	}
}

func TestSDCWriteSetsDisjoint(t *testing.T) {
	// The paper's central safety claim (§II.B): within one color, the
	// write sets of distinct subdomains never overlap.
	s := newTestSystem(t, 8, 4.0)
	pool := MustNewPool(4)
	defer pool.Close()
	r, err := New(Config{Kind: SDC, List: s.list, Pool: pool, Decomp: s.dec})
	if err != nil {
		t.Fatal(err)
	}
	sdc := r.(*sdcReducer)
	for c := 0; c < s.dec.NumColors(); c++ {
		sets := sdc.WriteSets(c)
		owner := make(map[int32]int)
		for k, set := range sets {
			for atom := range set {
				if prev, taken := owner[atom]; taken {
					t.Fatalf("color %d: atom %d written by subdomains %d and %d", c, atom, prev, k)
				}
				owner[atom] = k
			}
		}
	}
}

func TestSDCColorsCoverAllPairs(t *testing.T) {
	// Every stored pair is visited exactly once across the color sweep.
	s := newTestSystem(t, 6, 4.0)
	pool := MustNewPool(3)
	defer pool.Close()
	r, err := New(Config{Kind: SDC, List: s.list, Pool: pool, Decomp: s.dec})
	if err != nil {
		t.Fatal(err)
	}
	var visited int64
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	count := func(i, j int32) (float64, float64) {
		<-mu
		visited++
		mu <- struct{}{}
		return 0, 0
	}
	out := make([]float64, s.list.N())
	r.SweepScalar(out, count)
	if visited != int64(s.list.Pairs()) {
		t.Errorf("SDC visited %d pairs, want %d", visited, s.list.Pairs())
	}
}

func TestPairWorkAccounting(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	pool := MustNewPool(2)
	defer pool.Close()
	for _, k := range []Kind{Serial, SDC, CS, AtomicCS, SAP, Tasked} {
		r, err := New(Config{Kind: k, List: s.list, Pool: pool, Decomp: s.dec})
		if err != nil {
			t.Fatal(err)
		}
		if r.PairWork() != s.list.Pairs() {
			t.Errorf("%v PairWork = %d, want %d", k, r.PairWork(), s.list.Pairs())
		}
	}
	r, err := New(Config{Kind: RC, List: s.list, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if r.PairWork() != 2*s.list.Pairs() {
		t.Errorf("RC PairWork = %d, want %d (doubled)", r.PairWork(), 2*s.list.Pairs())
	}
	// RC's doubled count is exactly the symmetrized list's entry count —
	// the same number neighbor.Stats reports for it.
	if full := s.list.ToFull(); r.PairWork() != full.Stats().Pairs {
		t.Errorf("RC PairWork %d != symmetrized Stats.Pairs %d", r.PairWork(), full.Stats().Pairs)
	}
	// The checked wrapper must report the inner reducer's work, not its
	// own bookkeeping.
	if chk := NewCheckedReducer(r); chk.PairWork() != r.PairWork() {
		t.Errorf("CheckedReducer PairWork %d != inner %d", chk.PairWork(), r.PairWork())
	}
}

func TestSAPPrivateBytesGrowWithThreads(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	sc, vc := s.visits()
	sizes := map[int]int{}
	for _, threads := range []int{2, 4} {
		pool := MustNewPool(threads)
		r, err := New(Config{Kind: SAP, List: s.list, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, s.list.N())
		r.SweepScalar(out, sc)
		vout := make([]vec.Vec3, s.list.N())
		r.SweepVector(vout, vc)
		sizes[threads] = r.(*sapReducer).PrivateBytes()
		pool.Close()
	}
	if sizes[4] != 2*sizes[2] {
		t.Errorf("SAP private memory: %d bytes at 2 threads, %d at 4 — want linear growth", sizes[2], sizes[4])
	}
	wantPer := s.list.N() * (8 + 24)
	if sizes[2] != 2*wantPer {
		t.Errorf("SAP private bytes = %d, want %d", sizes[2], 2*wantPer)
	}
}

func TestRCFullListBytes(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	pool := MustNewPool(2)
	defer pool.Close()
	r, err := New(Config{Kind: RC, List: s.list, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	want := s.list.Pairs() * 4 // full list has 2×pairs entries
	if got := r.(*rcReducer).FullListBytes(); got != want {
		t.Errorf("RC extra bytes = %d, want %d", got, want)
	}
}

func TestParallelForAtomsCoversRange(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	for _, k := range Kinds {
		r, pool := buildReducer(t, s, k, 3)
		seen := make([]int32, s.list.N())
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		r.ParallelForAtoms(func(start, end, tid int) {
			<-mu
			for i := start; i < end; i++ {
				seen[i]++
			}
			mu <- struct{}{}
		})
		if pool != nil {
			pool.Close()
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("%v: atom %d visited %d times", k, i, c)
			}
		}
	}
}

func TestThreadsReporting(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	r, _ := buildReducer(t, s, Serial, 1)
	if r.Threads() != 1 || r.Kind() != Serial {
		t.Error("serial reducer misreports")
	}
	for _, k := range []Kind{SDC, CS, AtomicCS, SAP, RC, Tasked} {
		r, pool := buildReducer(t, s, k, 5)
		if r.Threads() != 5 {
			t.Errorf("%v Threads = %d", k, r.Threads())
		}
		if r.Kind() != k {
			t.Errorf("Kind = %v, want %v", r.Kind(), k)
		}
		pool.Close()
	}
}

func TestAtomicAddFloat64(t *testing.T) {
	var x float64
	pool := MustNewPool(8)
	defer pool.Close()
	pool.Run(func(tid int) {
		for k := 0; k < 1000; k++ {
			atomicAddFloat64(&x, 0.5)
		}
	})
	if x != 4000 {
		t.Errorf("atomic adds lost updates: %g, want 4000", x)
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0); err == nil {
		t.Error("0-thread pool accepted")
	}
	if _, err := NewPool(-3); err == nil {
		t.Error("negative pool accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNewPool must panic")
			}
		}()
		MustNewPool(0)
	}()
}

func TestPoolParallelFor(t *testing.T) {
	pool := MustNewPool(4)
	defer pool.Close()
	n := 1003
	hits := make([]int32, n)
	pool.ParallelFor(n, func(start, end, tid int) {
		for i := start; i < end; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	// Empty range is a no-op.
	pool.ParallelFor(0, func(start, end, tid int) { t.Error("body called for n=0") })
	pool.ParallelForStrided(0, func(k, tid int) { t.Error("body called for n=0") })
}

func TestPoolParallelForStrided(t *testing.T) {
	pool := MustNewPool(3)
	defer pool.Close()
	n := 17
	owner := make([]int, n)
	pool.ParallelForStrided(n, func(k, tid int) {
		owner[k] = tid + 1
	})
	for k := 0; k < n; k++ {
		if owner[k] != k%3+1 {
			t.Fatalf("index %d ran on worker %d, want %d", k, owner[k]-1, k%3)
		}
	}
}

func TestPoolFewerItemsThanThreads(t *testing.T) {
	pool := MustNewPool(8)
	defer pool.Close()
	var total int32
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	pool.ParallelFor(3, func(start, end, tid int) {
		<-mu
		total += int32(end - start)
		mu <- struct{}{}
	})
	if total != 3 {
		t.Errorf("covered %d of 3 items", total)
	}
}

func TestChunkBalance(t *testing.T) {
	for _, tc := range []struct{ n, threads int }{{10, 3}, {7, 7}, {5, 8}, {100, 16}, {1, 1}} {
		covered := 0
		prevEnd := 0
		for tid := 0; tid < tc.threads; tid++ {
			s, e := chunk(tc.n, tc.threads, tid)
			if s != prevEnd {
				t.Fatalf("n=%d t=%d: chunk %d starts at %d, want %d", tc.n, tc.threads, tid, s, prevEnd)
			}
			if e-s > tc.n/tc.threads+1 {
				t.Fatalf("n=%d t=%d: chunk %d oversized (%d)", tc.n, tc.threads, tid, e-s)
			}
			covered += e - s
			prevEnd = e
		}
		if covered != tc.n {
			t.Fatalf("n=%d t=%d: covered %d", tc.n, tc.threads, covered)
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	pool := MustNewPool(2)
	pool.Close()
	pool.Close() // must not panic
}

func TestStressConcurrentSweeps(t *testing.T) {
	// Hammer the parallel strategies with a larger random system to
	// shake out races (run under -race in CI).
	bx := box.MustNew(vec.Zero, vec.Splat(40))
	rng := rand.New(rand.NewSource(77))
	pos := make([]vec.Vec3, 3000)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*40, rng.Float64()*40, rng.Float64()*40)
	}
	list, err := neighbor.Builder{Cutoff: 3.0, Skin: 0.5, Half: true}.Build(bx, pos)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompose(bx, pos, core.Dim2, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	sc := func(i, j int32) (float64, float64) { return 1, 1 }
	serial, err := New(Config{Kind: Serial, List: list})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(pos))
	serial.SweepScalar(want, sc)

	pool := MustNewPool(6)
	defer pool.Close()
	for _, k := range []Kind{SDC, CS, AtomicCS, SAP, RC, Tasked} {
		r, err := New(Config{Kind: k, List: list, Pool: pool, Decomp: dec})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			got := make([]float64, len(pos))
			r.SweepScalar(got, sc)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v rep %d: count mismatch at %d: %g vs %g", k, rep, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPoolParallelForDynamic(t *testing.T) {
	pool := MustNewPool(4)
	defer pool.Close()
	n := 537
	hits := make([]int32, n)
	var mu sync.Mutex
	pool.ParallelForDynamic(n, func(k, tid int) {
		mu.Lock()
		hits[k]++
		mu.Unlock()
	})
	for k, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", k, h)
		}
	}
	pool.ParallelForDynamic(0, func(k, tid int) { t.Error("body called for n=0") })
}

func TestDynamicScheduleMatchesStatic(t *testing.T) {
	// SDC results must be schedule-independent: run the SDC sweep with
	// a dynamic inner schedule via a custom sweep and compare.
	s := newTestSystem(t, 6, 4.0)
	sc, _ := s.visits()
	serial, _ := buildReducer(t, s, Serial, 1)
	want := make([]float64, s.list.N())
	serial.SweepScalar(want, sc)

	pool := MustNewPool(3)
	defer pool.Close()
	got := make([]float64, s.list.N())
	for c := 0; c < s.dec.NumColors(); c++ {
		subs := s.dec.ByColor[c]
		pool.ParallelForDynamic(len(subs), func(k, _ int) {
			sd := int(subs[k])
			for _, i := range s.dec.Atoms(sd) {
				for _, j := range s.list.Neighbors(int(i)) {
					ci, cj := sc(i, j)
					got[i] += ci
					got[j] += cj
				}
			}
		})
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("dynamic schedule diverged at %d", i)
		}
	}
}

func TestAuditSDCScheduleClean(t *testing.T) {
	// A legal decomposition must produce zero conflicts at any width.
	s := newTestSystem(t, 8, 4.0)
	for _, threads := range []int{1, 2, 3, 5, 16} {
		conflicts, err := AuditSDCSchedule(s.dec, s.list, threads)
		if err != nil {
			t.Fatal(err)
		}
		if len(conflicts) != 0 {
			t.Fatalf("threads=%d: %d conflicts, first %+v", threads, len(conflicts), conflicts[0])
		}
	}
}

func TestAuditSDCScheduleDetectsBadColoring(t *testing.T) {
	// Corrupt the coloring: merge two adjacent colors into one. The
	// audit must light up.
	s := newTestSystem(t, 8, 4.0)
	dec := *s.dec
	merged := make([][]int32, dec.NumColors())
	copy(merged, dec.ByColor)
	merged[0] = append(append([]int32(nil), dec.ByColor[0]...), dec.ByColor[1]...)
	merged[1] = nil
	dec.ByColor = merged
	conflicts, err := AuditSDCSchedule(&dec, s.list, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) == 0 {
		t.Fatal("merged-color schedule produced no conflicts — detector is blind")
	}
	c := conflicts[0]
	if c.FirstTID == c.SecondTID {
		t.Errorf("conflict between identical workers: %+v", c)
	}
}

func TestAuditSDCScheduleValidation(t *testing.T) {
	s := newTestSystem(t, 6, 4.0)
	if _, err := AuditSDCSchedule(nil, s.list, 2); err == nil {
		t.Error("nil decomposition accepted")
	}
	if _, err := AuditSDCSchedule(s.dec, nil, 2); err == nil {
		t.Error("nil list accepted")
	}
	if _, err := AuditSDCSchedule(s.dec, s.list.ToFull(), 2); err == nil {
		t.Error("full list accepted")
	}
	if _, err := AuditSDCSchedule(s.dec, s.list, 0); err == nil {
		t.Error("0 threads accepted")
	}
}

func TestAuditSingleThreadNeverConflicts(t *testing.T) {
	// With one worker everything is same-TID: rewrites are fine even if
	// the coloring were broken — the audit distinguishes workers, not
	// just repeated writes.
	s := newTestSystem(t, 6, 4.0)
	dec := *s.dec
	merged := make([][]int32, dec.NumColors())
	copy(merged, dec.ByColor)
	merged[0] = append(append([]int32(nil), dec.ByColor[0]...), dec.ByColor[1]...)
	merged[1] = nil
	dec.ByColor = merged
	conflicts, err := AuditSDCSchedule(&dec, s.list, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("single worker cannot conflict with itself: %d conflicts", len(conflicts))
	}
}
