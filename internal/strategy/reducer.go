package strategy

import (
	"fmt"
	"strings"

	"sdcmd/internal/core"
	"sdcmd/internal/neighbor"
	"sdcmd/internal/telemetry"
	"sdcmd/internal/vec"
)

// Kind enumerates the reduction strategies of the paper's evaluation.
type Kind int

// The strategies. SDC is the paper's contribution; the others are the
// comparison baselines of Fig. 9 (§I's five solution classes, minus
// transactional memory which commodity hardware of neither 2009 nor
// this reproduction provides, plus the serial reference).
const (
	// Serial runs the plain sequential loops of Figs. 1/2.
	Serial Kind = iota
	// SDC is Spatial Decomposition Coloring (Figs. 7/8).
	SDC
	// CS wraps every shared update in one critical section (mutex).
	CS
	// AtomicCS uses lock-free CAS adds instead of a mutex — the
	// "atomic" flavor of the paper's first solution class.
	AtomicCS
	// SAP privatizes the reduction array per thread and merges.
	SAP
	// RC recomputes each pair twice on a full list so threads write
	// only their own atoms.
	RC
	// Tasked schedules the SDC subdomains as dependency-tracked cell
	// tasks over work-stealing deques instead of the rigid color-barrier
	// loop: a subdomain runs as soon as every adjacent lower-color
	// subdomain has finished, so idle workers steal ready tasks rather
	// than wait at 2^dim barriers per sweep (Meyer, arXiv:1305.4196).
	Tasked
)

var kindNames = map[Kind]string{
	Serial:   "serial",
	SDC:      "sdc",
	CS:       "cs",
	AtomicCS: "atomic",
	SAP:      "sap",
	RC:       "rc",
	Tasked:   "tasked",
}

// String returns the short lowercase name used by CLIs.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind is the inverse of String (case-insensitive).
func ParseKind(s string) (Kind, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	for k, n := range kindNames {
		if n == ls {
			return k, nil
		}
	}
	return 0, fmt.Errorf("strategy: unknown kind %q (want one of serial, sdc, cs, atomic, sap, rc, tasked)", s)
}

// Kinds lists all strategies in presentation order.
var Kinds = []Kind{Serial, SDC, CS, AtomicCS, SAP, RC, Tasked}

// ScalarVisit computes the pair contribution of (i, j) to a per-atom
// scalar array: ci is added to out[i] and cj to out[j]. It must be a
// pure function of its arguments (strategies call it concurrently) and
// direction-consistent — visit(j, i) must return (cj, ci) — because the
// RC strategy re-evaluates each pair from both ends.
type ScalarVisit func(i, j int32) (ci, cj float64)

// VectorVisit computes the pair force on atom i from atom j; out[i]
// receives +f and out[j] receives −f (Newton's third law, the §II.D.2
// optimization). It must be pure and antisymmetric —
// visit(j, i) = −visit(i, j) — for the same RC reason.
type VectorVisit func(i, j int32) vec.Vec3

// Reducer executes the two irregular-reduction sweeps of the EAM force
// calculation under one scheduling/synchronization policy.
type Reducer interface {
	// Kind identifies the policy.
	Kind() Kind
	// Threads returns the worker count (1 for Serial).
	Threads() int
	// SweepScalar accumulates visit over all pairs into out
	// (the electron-density loop of Figs. 1/7). out is NOT zeroed.
	SweepScalar(out []float64, visit ScalarVisit)
	// SweepVector accumulates visit over all pairs into out
	// (the force loop of Figs. 2/8). out is NOT zeroed.
	SweepVector(out []vec.Vec3, visit VectorVisit)
	// ParallelForAtoms runs body over [0, N) — the embedding phase,
	// which has no cross-iteration dependence (§II.C phase 2).
	ParallelForAtoms(body func(start, end, tid int))
	// PairWork returns the number of visit calls one scalar sweep
	// makes — the work-accounting input of the perf model (RC does
	// twice the pair work, §IV).
	PairWork() int
}

// Config assembles a Reducer.
type Config struct {
	// Kind selects the strategy.
	Kind Kind
	// List is the half neighbor list (all strategies consume half
	// lists; RC derives its full list internally).
	List *neighbor.List
	// Pool supplies workers; nil is allowed for Serial only.
	Pool *Pool
	// Decomp is the SDC decomposition; required for Kinds SDC and
	// Tasked.
	Decomp *core.Decomposition
	// Telemetry, when non-nil, receives per-color sweep times from the
	// SDC reducer (worker-level accumulation is attached to the Pool
	// separately via Pool.SetTelemetry).
	Telemetry *telemetry.Recorder
}

// New builds the reducer for cfg.
func New(cfg Config) (Reducer, error) {
	if cfg.List == nil {
		return nil, fmt.Errorf("strategy: nil neighbor list")
	}
	if !cfg.List.Half {
		return nil, fmt.Errorf("strategy: reducers require a half neighbor list")
	}
	if cfg.Kind != Serial {
		if cfg.Pool == nil {
			return nil, fmt.Errorf("strategy: %v requires a worker pool", cfg.Kind)
		}
	}
	switch cfg.Kind {
	case Serial:
		return &serialReducer{list: cfg.List}, nil
	case SDC:
		if err := validateDecomp(cfg, "SDC"); err != nil {
			return nil, err
		}
		return &sdcReducer{list: cfg.List, pool: cfg.Pool, dec: cfg.Decomp, tel: cfg.Telemetry}, nil
	case Tasked:
		if err := validateDecomp(cfg, "Tasked"); err != nil {
			return nil, err
		}
		return newTaskedReducer(cfg.List, cfg.Pool, cfg.Decomp, cfg.Telemetry), nil
	case CS:
		return &csReducer{list: cfg.List, pool: cfg.Pool}, nil
	case AtomicCS:
		return &atomicReducer{list: cfg.List, pool: cfg.Pool}, nil
	case SAP:
		return &sapReducer{list: cfg.List, pool: cfg.Pool}, nil
	case RC:
		return &rcReducer{half: cfg.List, full: cfg.List.ToFull(), pool: cfg.Pool}, nil
	default:
		return nil, fmt.Errorf("strategy: unknown kind %v", cfg.Kind)
	}
}

// validateDecomp checks the decomposition requirements shared by the
// SDC and Tasked strategies: both rely on the coloring's safety radius
// and on the partition covering exactly the list's atoms.
func validateDecomp(cfg Config, name string) error {
	if cfg.Decomp == nil {
		return fmt.Errorf("strategy: %s requires a decomposition", name)
	}
	if cfg.Decomp.Reach < cfg.List.Cutoff+cfg.List.Skin-1e-12 {
		return fmt.Errorf("strategy: decomposition reach %g < list reach %g — coloring unsafe",
			cfg.Decomp.Reach, cfg.List.Cutoff+cfg.List.Skin)
	}
	if len(cfg.Decomp.PartIndex) != cfg.List.N() {
		return fmt.Errorf("strategy: decomposition covers %d atoms, list %d",
			len(cfg.Decomp.PartIndex), cfg.List.N())
	}
	return nil
}
