package perfmodel

import (
	"errors"
	"math"
	"testing"

	"sdcmd/internal/core"
	"sdcmd/internal/lattice"
	"sdcmd/internal/strategy"
)

// paperTable1 holds the published speedups (Hu et al. 2009, Table 1),
// indexed [case][dim][threadIdx] with threads {2,3,4,8,12,16}; 0 marks
// a blank cell.
var paperThreads = []int{2, 3, 4, 8, 12, 16}

var paperTable1 = map[lattice.Case]map[core.Dim][6]float64{
	lattice.Small: {
		core.Dim1: {1.71, 2.46, 3.07, 4.17, 0, 0},
		core.Dim2: {1.70, 2.46, 3.07, 4.74, 5.90, 6.43},
		core.Dim3: {1.66, 2.40, 2.99, 4.61, 5.74, 6.30},
	},
	lattice.Medium: {
		core.Dim1: {1.84, 2.64, 3.37, 6.24, 6.33, 0},
		core.Dim2: {1.84, 2.65, 3.39, 6.20, 8.89, 10.90},
		core.Dim3: {1.82, 2.65, 3.36, 6.16, 8.76, 10.78},
	},
	lattice.Large3: {
		core.Dim1: {1.86, 2.76, 3.67, 6.82, 9.76, 9.59},
		core.Dim2: {1.87, 2.78, 3.64, 6.74, 9.73, 12.31},
		core.Dim3: {1.86, 2.75, 3.64, 6.64, 9.65, 12.29},
	},
	lattice.Large4: {
		core.Dim1: {1.88, 2.79, 3.66, 6.30, 9.97, 9.82},
		core.Dim2: {1.87, 2.80, 3.65, 6.77, 9.84, 12.42},
		core.Dim3: {1.87, 2.80, 3.67, 6.74, 9.82, 12.34},
	},
}

func modelInputs(t *testing.T) map[lattice.Case]Input {
	t.Helper()
	ppa, err := MeasurePairsPerAtom(8, 3.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	out := map[lattice.Case]Input{}
	for _, c := range lattice.Cases {
		in, err := InputForCase(c, ppa)
		if err != nil {
			t.Fatal(err)
		}
		out[c] = in
	}
	return out
}

func TestMeasurePairsPerAtom(t *testing.T) {
	ppa, err := MeasurePairsPerAtom(8, 3.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// bcc Fe with reach 4.0 Å: shells at 2.48 (8), 2.87 (6), 4.05 Å —
	// 14 full neighbors within reach, 7 per atom in a half list.
	if math.Abs(ppa-7.0) > 1e-9 {
		t.Errorf("pairs/atom = %g, want 7", ppa)
	}
	if _, err := MeasurePairsPerAtom(2, 3.5, 0.5); err == nil {
		t.Error("undersized sample accepted")
	}
	if _, err := MeasurePairsPerAtom(8, -1, 0.5); err == nil {
		t.Error("negative cutoff accepted")
	}
}

func TestInputForCase(t *testing.T) {
	in, err := InputForCase(lattice.Medium, 7)
	if err != nil {
		t.Fatal(err)
	}
	if in.Atoms != 265302 || in.HalfPairs != 7*265302 {
		t.Errorf("medium input = %+v", in)
	}
	if math.Abs(in.Edge-51*lattice.FeLatticeConstant) > 1e-9 {
		t.Errorf("medium edge = %g", in.Edge)
	}
	if _, err := InputForCase(lattice.Case(99), 7); err == nil {
		t.Error("unknown case accepted")
	}
	if _, err := InputForCase(lattice.Small, 0); err == nil {
		t.Error("zero pairs/atom accepted")
	}
}

func TestValidation(t *testing.T) {
	m := XeonE7320()
	bad := Input{Atoms: 0, HalfPairs: 1, Edge: 1}
	if _, err := m.SerialTime(bad); err == nil {
		t.Error("bad input accepted by SerialTime")
	}
	if _, err := m.Time(strategy.SDC, core.Dim2, 4, bad); err == nil {
		t.Error("bad input accepted by Time")
	}
	good := Input{Atoms: 1000, HalfPairs: 7000, Edge: 60}
	if _, err := m.Time(strategy.SDC, core.Dim2, 0, good); err == nil {
		t.Error("0 threads accepted")
	}
	if _, err := m.Time(strategy.Kind(99), core.Dim2, 4, good); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := m.Speedup(strategy.SDC, core.Dim2, 4, bad); err == nil {
		t.Error("bad input accepted by Speedup")
	}
}

// TestCalibrationAgainstTable1 is the reproduction gate for experiment
// E1: every non-blank Table 1 cell must be matched within tolerance
// (15 % for the well-conditioned 2D/3D columns, 30 % for 1D whose
// granularity behaviour the paper under-specifies), and the blank
// pattern must match exactly.
func TestCalibrationAgainstTable1(t *testing.T) {
	m := XeonE7320()
	ins := modelInputs(t)
	for _, c := range lattice.Cases {
		for _, dim := range []core.Dim{core.Dim1, core.Dim2, core.Dim3} {
			want := paperTable1[c][dim]
			for ti, p := range paperThreads {
				got, err := m.Speedup(strategy.SDC, dim, p, ins[c])
				if want[ti] == 0 {
					if !errors.Is(err, ErrInsufficientParallelism) {
						t.Errorf("%v %v %d threads: paper blank, model gave (%g, %v)", c, dim, p, got, err)
					}
					continue
				}
				if err != nil {
					t.Errorf("%v %v %d threads: model blank (%v), paper has %g", c, dim, p, err, want[ti])
					continue
				}
				tol := 0.15
				if dim == core.Dim1 {
					tol = 0.30
				}
				rel := math.Abs(got-want[ti]) / want[ti]
				if rel > tol {
					t.Errorf("%v %v %d threads: model %.2f vs paper %.2f (%.0f%% off)", c, dim, p, got, want[ti], rel*100)
				}
			}
		}
	}
}

// TestFig9Shape asserts the qualitative findings of the paper's §IV
// discussion of Fig. 9 for every test case.
func TestFig9Shape(t *testing.T) {
	m := XeonE7320()
	ins := modelInputs(t)
	for _, c := range lattice.Cases {
		in := ins[c]
		get := func(k strategy.Kind, p int) float64 {
			s, err := m.Speedup(k, core.Dim2, p, in)
			if err != nil {
				t.Fatalf("%v %v %d: %v", c, k, p, err)
			}
			return s
		}
		for _, p := range paperThreads {
			sdc := get(strategy.SDC, p)
			cs := get(strategy.CS, p)
			sap := get(strategy.SAP, p)
			rc := get(strategy.RC, p)
			// "our two-dimensional SDC method … has highest speedup
			// than other methods on all of test cases".
			if sdc <= cs || sdc <= sap || sdc <= rc {
				t.Errorf("%v @%d: SDC %.2f not the best (cs %.2f sap %.2f rc %.2f)", c, p, sdc, cs, sap, rc)
			}
			// "Critical Section (CS) method achieves lowest efficiency".
			if cs >= sap || cs >= rc || cs >= sdc {
				t.Errorf("%v @%d: CS %.2f not the worst", c, p, cs)
			}
			// CS is "not feasible": never a real speedup.
			if cs > 1.2 {
				t.Errorf("%v @%d: CS speedup %.2f too healthy", c, p, cs)
			}
		}
		// "When the number of executing cores is less than 8, SAP …
		// achieves better performance than CS and RC" (small/medium
		// panels show this crossover clearly).
		if c == lattice.Small || c == lattice.Medium {
			for _, p := range []int{2, 3, 4} {
				if sap, rc := get(strategy.SAP, p), get(strategy.RC, p); sap <= rc {
					t.Errorf("%v @%d: SAP %.2f should beat RC %.2f below 8 cores", c, p, sap, rc)
				}
			}
		}
		// "it [RC] gets better performance when the number of executing
		// cores is more than 8".
		for _, p := range []int{12, 16} {
			if sap, rc := get(strategy.SAP, p), get(strategy.RC, p); rc <= sap {
				t.Errorf("%v @%d: RC %.2f should beat SAP %.2f above 8 cores", c, p, rc, sap)
			}
		}
		// "SAP … performance will degrade with the increase of the
		// number of executing cores" past 8.
		if s8, s16 := get(strategy.SAP, 8), get(strategy.SAP, 16); s16 >= s8 {
			t.Errorf("%v: SAP did not degrade past 8 cores (%.2f -> %.2f)", c, s8, s16)
		}
		// "SDC method can gain about 1.7-fold increase in performance
		// as compared to RC method on medium and large test cases."
		if c != lattice.Small {
			ratio := get(strategy.SDC, 16) / get(strategy.RC, 16)
			if ratio < 1.4 || ratio > 2.1 {
				t.Errorf("%v: SDC/RC @16 = %.2f, want ≈1.7", c, ratio)
			}
		}
	}
}

func TestDim2BeatsOthersAtScale(t *testing.T) {
	// §IV: "two-dimensional SDC method achieves highest efficiency";
	// 3D "degrades the performance but only slightly".
	m := XeonE7320()
	ins := modelInputs(t)
	for _, c := range lattice.Cases {
		d2, err := m.Speedup(strategy.SDC, core.Dim2, 16, ins[c])
		if err != nil {
			t.Fatal(err)
		}
		d3, err := m.Speedup(strategy.SDC, core.Dim3, 16, ins[c])
		if err != nil {
			t.Fatal(err)
		}
		if d3 >= d2 {
			t.Errorf("%v: 3D %.2f >= 2D %.2f at 16 threads", c, d3, d2)
		}
		if (d2-d3)/d2 > 0.10 {
			t.Errorf("%v: 3D degradation %.0f%% vs 2D — paper says 'only slightly'", c, (d2-d3)/d2*100)
		}
	}
}

func TestScalabilityWithSize(t *testing.T) {
	// §IV: performance improves "with the increase in the number of
	// atoms": speedup at 16 threads must grow monotonically with case
	// size for 2D SDC.
	m := XeonE7320()
	ins := modelInputs(t)
	prev := 0.0
	for _, c := range lattice.Cases {
		s, err := m.Speedup(strategy.SDC, core.Dim2, 16, ins[c])
		if err != nil {
			t.Fatal(err)
		}
		if s <= prev {
			t.Errorf("%v: speedup %.2f did not grow with system size (prev %.2f)", c, s, prev)
		}
		prev = s
	}
}

func TestFeasible1D(t *testing.T) {
	m := XeonE7320()
	ins := modelInputs(t)
	// Small case: feasible at 8, not at 12/16 (Table 1 blanks).
	if ok, err := m.Feasible1D(ins[lattice.Small], 8); err != nil || !ok {
		t.Errorf("small @8 = (%v, %v), want feasible", ok, err)
	}
	for _, p := range []int{12, 16} {
		if ok, _ := m.Feasible1D(ins[lattice.Small], p); ok {
			t.Errorf("small @%d should be infeasible for 1D", p)
		}
	}
	if ok, _ := m.Feasible1D(ins[lattice.Medium], 16); ok {
		t.Error("medium @16 should be infeasible for 1D")
	}
	if ok, _ := m.Feasible1D(ins[lattice.Large3], 16); !ok {
		t.Error("large3 @16 should be feasible for 1D")
	}
}

func TestSerialSpeedupIsOne(t *testing.T) {
	m := XeonE7320()
	in := Input{Atoms: 100000, HalfPairs: 700000, Edge: 100}
	s, err := m.Speedup(strategy.Serial, core.Dim2, 1, in)
	if err != nil || math.Abs(s-1) > 1e-12 {
		t.Errorf("serial speedup = %g, %v", s, err)
	}
}

func TestOneThreadParallelSlowerThanSerial(t *testing.T) {
	// Parallel machinery on one core must cost ≥ serial (overheads).
	m := XeonE7320()
	in := Input{Atoms: 100000, HalfPairs: 700000, Edge: 100}
	for _, k := range []strategy.Kind{strategy.SDC, strategy.CS, strategy.AtomicCS, strategy.SAP, strategy.RC} {
		s, err := m.Speedup(k, core.Dim2, 1, in)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if s > 1 {
			t.Errorf("%v on 1 thread: speedup %.3f > 1", k, s)
		}
	}
}
