package perfmodel

import (
	"testing"

	"sdcmd/internal/core"
	"sdcmd/internal/lattice"
	"sdcmd/internal/strategy"
)

func hybridInput(t *testing.T) Input {
	t.Helper()
	in, err := InputForCase(lattice.Large3, 7)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInterconnectPresets(t *testing.T) {
	for _, ic := range []Interconnect{GigabitEthernet(), InfiniBandDDR()} {
		if err := ic.Validate(); err != nil {
			t.Errorf("%s: %v", ic.Name, err)
		}
	}
	if GigabitEthernet().Latency <= InfiniBandDDR().Latency {
		t.Error("ethernet must have higher latency than infiniband")
	}
	bad := Interconnect{Latency: -1}
	if bad.Validate() == nil {
		t.Error("negative latency accepted")
	}
}

func TestTimeHybridValidation(t *testing.T) {
	m := XeonE7320()
	in := hybridInput(t)
	ic := InfiniBandDDR()
	if _, err := m.TimeHybrid(0, 4, in, ic); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := m.TimeHybrid(2, 0, in, ic); err == nil {
		t.Error("0 threads accepted")
	}
	if _, err := m.TimeHybrid(2, 4, Input{}, ic); err == nil {
		t.Error("bad input accepted")
	}
	if _, err := m.TimeHybrid(2, 4, in, Interconnect{Latency: -1}); err == nil {
		t.Error("bad interconnect accepted")
	}
	// Too many ranks: slab thinner than reach.
	if _, err := m.TimeHybrid(1000, 1, in, ic); err == nil {
		t.Error("over-decomposition accepted")
	}
}

func TestHybridSingleRankMatchesSharedMemory(t *testing.T) {
	// ranks=1 has zero comm; its speedup should be close to the pure
	// SDC prediction at the same width (the {Y,Z} slab coloring differs
	// slightly from the {X,Y} one, so allow a modest gap).
	m := XeonE7320()
	in := hybridInput(t)
	pt, err := m.TimeHybrid(1, 16, in, InfiniBandDDR())
	if err != nil {
		t.Fatal(err)
	}
	if pt.CommFraction != 0 {
		t.Errorf("single rank comm fraction = %g", pt.CommFraction)
	}
	shared, err := m.Speedup(strategy.SDC, core.Dim2, 16, in)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Speedup < 0.7*shared || pt.Speedup > 1.3*shared {
		t.Errorf("1-rank hybrid %g vs shared-memory %g", pt.Speedup, shared)
	}
}

func TestHybridCommCostsOrdering(t *testing.T) {
	// Same mix: InfiniBand beats gigabit Ethernet; more ranks at fixed
	// total cores cost more communication.
	m := XeonE7320()
	in := hybridInput(t)
	ib, err := m.TimeHybrid(4, 4, in, InfiniBandDDR())
	if err != nil {
		t.Fatal(err)
	}
	eth, err := m.TimeHybrid(4, 4, in, GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	if ib.Speedup <= eth.Speedup {
		t.Errorf("InfiniBand %g not faster than Ethernet %g", ib.Speedup, eth.Speedup)
	}
	if eth.CommFraction <= ib.CommFraction {
		t.Errorf("Ethernet comm fraction %g not above InfiniBand %g", eth.CommFraction, ib.CommFraction)
	}
}

func TestBestHybridMix(t *testing.T) {
	m := XeonE7320()
	in := hybridInput(t)
	pts, best, err := m.BestHybridMix(16, in, InfiniBandDDR())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("only %d feasible mixes", len(pts))
	}
	for _, pt := range pts {
		if pt.Ranks*pt.ThreadsPerRank != 16 {
			t.Errorf("mix %dx%d != 16 cores", pt.Ranks, pt.ThreadsPerRank)
		}
		if pt.Speedup > pts[best].Speedup {
			t.Error("best index wrong")
		}
	}
	// On a fast fabric at 16 cores, some hybrid or pure mix must beat
	// 8× (sanity on absolute scale).
	if pts[best].Speedup < 8 {
		t.Errorf("best 16-core mix only %gx", pts[best].Speedup)
	}
	if _, _, err := m.BestHybridMix(0, in, InfiniBandDDR()); err == nil {
		t.Error("0 cores accepted")
	}
}
