// Package perfmodel is an analytic execution-time model of the paper's
// testbed — four quad-core Intel Xeon E7320 sockets (16 cores, 4 MB
// L2/socket, §III.A) — used to regenerate Table 1 and Fig. 9 on hosts
// that do not have 16 physical cores (see DESIGN.md §4, "Hardware"
// substitution). The model consumes *measured* workload statistics from
// the real simulator (atom counts, half-list pair counts, subdomain
// layouts from the real SDC code) and layers the machine effects the
// paper's §IV discusses on top:
//
//   - memory-bandwidth saturation that caps all strategies near 12.4×
//     at 16 threads,
//   - per-color barrier + fork/join costs (×2 sweeps per step),
//   - whole-subdomain scheduling granularity (the cause of 1D SDC's
//     saturation and the Table 1 blanks),
//   - serialized critical sections for CS, per-update CAS traffic for
//     the atomic variant,
//   - privatized-copy merges and cache pressure for SAP,
//   - doubled pair work for RC.
//
// Times are in abstract cost units; only ratios (speedups) are
// meaningful, exactly as in the paper's evaluation.
package perfmodel

import (
	"errors"
	"fmt"
	"math"

	"sdcmd/internal/core"
	"sdcmd/internal/strategy"
)

// Machine holds the calibrated hardware/runtime constants. The defaults
// in XeonE7320 were fitted to the Table 1 / Fig 9 anchor points (see
// model_test.go's calibration suite).
type Machine struct {
	// CPair is the cost of one pair interaction in one sweep; CAtom is
	// the per-atom embedding-phase cost.
	CPair, CAtom float64
	// Beta is the per-extra-thread bandwidth/coherence drag: effective
	// time is multiplied by 1 + Beta·(P−1).
	Beta float64
	// BarrierBase and BarrierPerThread model one barrier + dispatch.
	BarrierBase, BarrierPerThread float64
	// LockCost is the serialized cost of one mutex-protected update;
	// LockPingPong is the extra coherence cost per additional thread.
	LockCost, LockPingPong float64
	// AtomicCost and AtomicPingPong are the CAS-loop analogues.
	AtomicCost, AtomicPingPong float64
	// MergeCost is SAP's per-element cost of merging one private copy
	// into the shared array (serialized across threads).
	MergeCost float64
	// SAPCacheDrag adds bandwidth drag per thread from the privatized
	// copies competing for cache (§IV: "competes with cache space").
	SAPCacheDrag float64
	// RCBeta replaces Beta for RC (no write sharing at all, so less
	// coherence drag despite the bigger list).
	RCBeta float64
	// Sched is the per-sweep parallel scheduling/partition-traversal
	// overhead coefficient, charged as Sched·√N to every parallel
	// strategy (P-independent: the partition arrays are walked once per
	// sweep regardless of thread count).
	Sched float64
	// Loc is the per-dimensionality cache-locality multiplier on pair
	// cost: index 1..3. §IV credits 2D with the best surface/volume.
	Loc [4]float64
	// ModelReach is the decomposition granularity (Å) the paper's own
	// runs exhibit (its Table 1 blanks and 1D saturation imply ≈2.2 Å
	// effective reach); the model decomposes cases at this reach.
	ModelReach float64
}

// XeonE7320 returns the calibrated machine description.
func XeonE7320() Machine {
	return Machine{
		CPair:            1.0,
		CAtom:            1.4,
		Beta:             0.013,
		BarrierBase:      400,
		BarrierPerThread: 60,
		LockCost:         1.35,
		LockPingPong:     0.28,
		AtomicCost:       0.32,
		AtomicPingPong:   0.05,
		MergeCost:        0.065,
		SAPCacheDrag:     0.0135,
		RCBeta:           0.009,
		Sched:            85,
		Loc:              [4]float64{0, 1.030, 1.000, 1.012},
		ModelReach:       2.2,
	}
}

// Input is the measured workload of one test case.
type Input struct {
	// Atoms is the atom count.
	Atoms int
	// HalfPairs is the half-neighbor-list pair count.
	HalfPairs int
	// Edge is the cubic box edge in Å.
	Edge float64
}

// Validate checks the input describes a real workload.
func (in Input) Validate() error {
	if in.Atoms <= 0 || in.HalfPairs <= 0 || !(in.Edge > 0) {
		return fmt.Errorf("perfmodel: invalid input %+v", in)
	}
	return nil
}

// ErrInsufficientParallelism marks (strategy, threads) combinations the
// paper leaves blank: a 1D decomposition whose per-color subdomain
// count does not exceed the thread count (Table 1's empty cells).
var ErrInsufficientParallelism = errors.New("perfmodel: subdomains per color do not exceed thread count")

// subPerColor decomposes the case's box at the model reach and returns
// subdomains-per-color for dim. It reuses the real SDC geometry code.
func (m Machine) subPerColor(in Input, dim core.Dim) (int, error) {
	bx, err := boxForEdge(in.Edge)
	if err != nil {
		return 0, err
	}
	dec, err := core.Decompose(bx, nil, dim, m.ModelReach)
	if err != nil {
		return 0, err
	}
	return dec.SubdomainsPerColor(), nil
}

// SerialTime is the per-step cost of the optimized sequential code:
// two pair sweeps (density + force) and one embedding pass.
func (m Machine) SerialTime(in Input) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	return 2*float64(in.HalfPairs)*m.CPair + float64(in.Atoms)*m.CAtom, nil
}

// drag returns the bandwidth multiplier 1 + β(P−1).
func drag(beta float64, p int) float64 { return 1 + beta*float64(p-1) }

// barrier returns the cost of one barrier + dispatch at P threads.
func (m Machine) barrier(p int) float64 {
	return m.BarrierBase + m.BarrierPerThread*float64(p)
}

// Time predicts the per-step force-calculation time for a strategy.
// dim is only consulted for SDC. threads must be >= 1; threads == 1
// models the parallel code run on one core (which is how the paper
// normalizes: speedup is serial time / parallel time on P cores).
func (m Machine) Time(k strategy.Kind, dim core.Dim, threads int, in Input) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if threads < 1 {
		return 0, fmt.Errorf("perfmodel: threads %d must be >= 1", threads)
	}
	p := float64(threads)
	pairs := float64(in.HalfPairs)
	atoms := float64(in.Atoms)
	embed := atoms * m.CAtom / p * drag(m.Beta, threads)
	// Parallel-only per-sweep overhead (2 pair sweeps per step).
	sched := 2 * m.Sched * math.Sqrt(atoms)
	if threads == 1 {
		sched = 0
	}

	switch k {
	case strategy.Serial:
		return m.SerialTime(in)
	case strategy.SDC:
		spc, err := m.subPerColor(in, dim)
		if err != nil {
			return 0, err
		}
		if spc <= threads && dim == core.Dim1 {
			return 0, fmt.Errorf("%w: %d per color, %d threads (1D)", ErrInsufficientParallelism, spc, threads)
		}
		colors := dim.Colors()
		// Per color, whole subdomains are scheduled: makespan is
		// ceil(S/P) subdomain units of the color's work W/ (colors·S).
		rounds := math.Ceil(float64(spc) / p)
		perColorPairs := pairs / float64(colors)
		sweep := func() float64 {
			t := 0.0
			for c := 0; c < colors; c++ {
				work := perColorPairs / float64(spc) * rounds * m.CPair * m.Loc[dim]
				t += work*drag(m.Beta, threads) + m.barrier(threads)
			}
			return t
		}
		return sweep() + sweep() + sched + embed, nil // density sweep + force sweep
	case strategy.CS:
		// Compute parallelizes; every pair's two shared updates
		// serialize through the mutex with coherence ping-pong.
		compute := 2 * pairs * m.CPair / p * drag(m.Beta, threads)
		locked := 2 * 2 * pairs * m.LockCost * (1 + m.LockPingPong*(p-1))
		if threads == 1 {
			locked = 2 * 2 * pairs * m.LockCost // uncontended
		}
		return compute + locked + sched + embed + 2*m.barrier(threads), nil
	case strategy.AtomicCS:
		compute := 2 * pairs * m.CPair / p * drag(m.Beta, threads)
		atomic := 2 * 2 * pairs * m.AtomicCost * (1 + m.AtomicPingPong*(p-1))
		if threads == 1 {
			atomic = 2 * 2 * pairs * m.AtomicCost
		}
		return compute + atomic + sched + embed + 2*m.barrier(threads), nil
	case strategy.SAP:
		// Private accumulation parallelizes; merges serialize (one
		// critical section per thread over the whole array, §IV), and
		// the P private copies drag on the shared cache.
		cacheDrag := drag(m.Beta+m.SAPCacheDrag*(p-1), threads)
		compute := 2 * pairs * m.CPair / p * cacheDrag
		merge := 2 * atoms * m.MergeCost * p
		return compute + merge + sched + embed + 2*m.barrier(threads), nil
	case strategy.RC:
		// Double pair work, zero synchronization, no write sharing.
		compute := 2 * 2 * pairs * m.CPair / p * drag(m.RCBeta, threads)
		return compute + sched + embed + 2*m.barrier(threads), nil
	}
	return 0, fmt.Errorf("perfmodel: unsupported strategy %v", k)
}

// Speedup returns SerialTime / Time for the combination, or an error
// for blank cells.
func (m Machine) Speedup(k strategy.Kind, dim core.Dim, threads int, in Input) (float64, error) {
	ser, err := m.SerialTime(in)
	if err != nil {
		return 0, err
	}
	par, err := m.Time(k, dim, threads, in)
	if err != nil {
		return 0, err
	}
	return ser / par, nil
}

// Feasible1D reports whether the paper would run 1D SDC at this thread
// count (Table 1 blanks otherwise).
func (m Machine) Feasible1D(in Input, threads int) (bool, error) {
	spc, err := m.subPerColor(in, core.Dim1)
	if err != nil {
		return false, err
	}
	return spc > threads, nil
}
