package perfmodel

import (
	"fmt"

	"sdcmd/internal/core"
	"sdcmd/internal/strategy"
)

// Topology describes the socket layout of a NUMA machine — the paper's
// first future-work direction (§V: "a detailed study of SDC method on
// NUMA memory architecture … multi-core and multi-socket shared memory
// system"). The testbed itself is 4 sockets × 4 cores.
type Topology struct {
	// Sockets and CoresPerSocket define the layout.
	Sockets, CoresPerSocket int
	// RemotePenalty is the extra cost multiplier of a remote-socket
	// memory access relative to a local one (≈ 1.4-2.2 on 2009-era
	// FSB/early-QPI four-socket machines; 0.65 here means remote
	// accesses cost 1.65× local).
	RemotePenalty float64
	// HaloFraction is the share of a thread's traffic that touches
	// another thread's data when the data is distributed NUMA-aware
	// (the subdomain surface/volume effect).
	HaloFraction float64
}

// XeonE7320Topology returns the paper testbed's layout.
func XeonE7320Topology() Topology {
	return Topology{Sockets: 4, CoresPerSocket: 4, RemotePenalty: 0.65, HaloFraction: 0.18}
}

// Validate checks the topology.
func (t Topology) Validate() error {
	if t.Sockets < 1 || t.CoresPerSocket < 1 {
		return fmt.Errorf("perfmodel: bad topology %+v", t)
	}
	if t.RemotePenalty < 0 || t.HaloFraction < 0 || t.HaloFraction > 1 {
		return fmt.Errorf("perfmodel: bad NUMA penalties %+v", t)
	}
	return nil
}

// Cores returns the machine's core count.
func (t Topology) Cores() int { return t.Sockets * t.CoresPerSocket }

// Placement selects how per-atom data is distributed over sockets.
type Placement int

// Placements.
const (
	// NaivePlacement: all reduction arrays are first-touched by the
	// master thread and live on socket 0; every off-socket thread pays
	// the remote penalty on all its traffic. This is what an
	// unmodified OpenMP port does.
	NaivePlacement Placement = iota
	// NUMAAwarePlacement: arrays are first-touched by the thread that
	// owns them (parallel initialization in subdomain order); only the
	// halo fraction of the traffic crosses sockets.
	NUMAAwarePlacement
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case NaivePlacement:
		return "naive"
	case NUMAAwarePlacement:
		return "numa-aware"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// remoteFraction estimates the share of memory traffic that crosses a
// socket boundary for P compactly-placed threads.
func (t Topology) remoteFraction(p int, placement Placement) float64 {
	if p <= t.CoresPerSocket {
		return 0 // one socket: no remote traffic either way
	}
	if p > t.Cores() {
		p = t.Cores()
	}
	switch placement {
	case NaivePlacement:
		// Threads beyond socket 0 access socket-0-resident data.
		offSocket := p - t.CoresPerSocket
		return float64(offSocket) / float64(p)
	case NUMAAwarePlacement:
		// Only halo traffic crosses, and only the off-socket share of
		// it lands remote.
		offSocket := p - t.CoresPerSocket
		return t.HaloFraction * float64(offSocket) / float64(p)
	}
	return 0
}

// NUMADrag returns the multiplicative slowdown of the memory-bound part
// of a P-thread run under the placement.
func (t Topology) NUMADrag(p int, placement Placement) float64 {
	return 1 + t.RemotePenalty*t.remoteFraction(p, placement)
}

// TimeNUMA is Machine.Time with the NUMA placement drag applied to the
// memory-bound portion of the execution.
func (m Machine) TimeNUMA(k strategy.Kind, dim core.Dim, threads int, in Input, topo Topology, placement Placement) (float64, error) {
	if err := topo.Validate(); err != nil {
		return 0, err
	}
	base, err := m.Time(k, dim, threads, in)
	if err != nil {
		return 0, err
	}
	if k == strategy.Serial {
		return base, nil
	}
	return base * topo.NUMADrag(threads, placement), nil
}

// SpeedupNUMA returns serial time over TimeNUMA.
func (m Machine) SpeedupNUMA(k strategy.Kind, dim core.Dim, threads int, in Input, topo Topology, placement Placement) (float64, error) {
	ser, err := m.SerialTime(in)
	if err != nil {
		return 0, err
	}
	par, err := m.TimeNUMA(k, dim, threads, in, topo, placement)
	if err != nil {
		return 0, err
	}
	return ser / par, nil
}

// NUMAImprovement predicts the relative gain of NUMA-aware placement
// over naive placement at the given width: (T_naive − T_aware)/T_naive.
func (m Machine) NUMAImprovement(k strategy.Kind, dim core.Dim, threads int, in Input, topo Topology) (float64, error) {
	naive, err := m.TimeNUMA(k, dim, threads, in, topo, NaivePlacement)
	if err != nil {
		return 0, err
	}
	aware, err := m.TimeNUMA(k, dim, threads, in, topo, NUMAAwarePlacement)
	if err != nil {
		return 0, err
	}
	return (naive - aware) / naive, nil
}
