package perfmodel

import (
	"fmt"
	"math"

	"sdcmd/internal/core"
	"sdcmd/internal/vec"
)

// Interconnect models the message fabric of a cluster — the missing
// quantity in the paper's §V "MPI+OpenMP in multi-core cluster" future
// work. Costs are in the same abstract units as Machine (CPair = one
// pair interaction ≈ a few hundred ns on the 2009 testbed; the presets
// below convert real latencies/bandwidths at 250 ns/pair).
type Interconnect struct {
	// Name labels the preset.
	Name string
	// Latency is the per-message cost.
	Latency float64
	// PerAtom is the per-ghost-atom transfer cost (marshalling + wire
	// time for one position/force record).
	PerAtom float64
}

// GigabitEthernet is a 2009-era commodity cluster fabric
// (≈50 µs latency, ≈100 MB/s): latency ≈ 200k pair-times.
func GigabitEthernet() Interconnect {
	return Interconnect{Name: "gigabit-ethernet", Latency: 200000, PerAtom: 1.0}
}

// InfiniBandDDR is a 2009 HPC fabric (≈2 µs latency, ≈1.5 GB/s):
// latency ≈ 8k pair-times.
func InfiniBandDDR() Interconnect {
	return Interconnect{Name: "infiniband-ddr", Latency: 8000, PerAtom: 0.07}
}

// Validate rejects nonsense.
func (ic Interconnect) Validate() error {
	if !(ic.Latency >= 0) || !(ic.PerAtom >= 0) {
		return fmt.Errorf("perfmodel: bad interconnect %+v", ic)
	}
	return nil
}

// HybridPoint is one (ranks, threadsPerRank) prediction.
type HybridPoint struct {
	Ranks, ThreadsPerRank int
	// Speedup over the single-core serial code.
	Speedup float64
	// CommFraction is the share of step time spent communicating.
	CommFraction float64
}

// TimeHybrid predicts the per-step time of the hybrid engine: `ranks`
// x-slab domains, each running SDC over `threads` workers on its own
// node, communicating ghosts over the interconnect. The within-node
// model reuses Machine.Time on the per-rank share of the workload (with
// the slab's own {Y,Z} SDC geometry); the communication model charges
// the 8 messages per step of the real internal/hybrid protocol
// (position refresh, reverse ρ, forward F′, reverse force — two
// neighbors each) with ghost volume from the slab surface.
func (m Machine) TimeHybrid(ranks, threads int, in Input, ic Interconnect) (HybridPoint, error) {
	p := HybridPoint{Ranks: ranks, ThreadsPerRank: threads}
	if err := in.Validate(); err != nil {
		return p, err
	}
	if err := ic.Validate(); err != nil {
		return p, err
	}
	if ranks < 1 || threads < 1 {
		return p, fmt.Errorf("perfmodel: ranks %d / threads %d must be >= 1", ranks, threads)
	}
	slabW := in.Edge / float64(ranks)
	reach := m.ModelReach
	if slabW < reach {
		return p, fmt.Errorf("%w: slab width %g < reach %g", ErrInsufficientParallelism, slabW, reach)
	}

	// Per-rank compute: share of pairs/atoms, SDC over the slab's
	// {Y,Z} axes. Build the slab decomposition for the granularity
	// analysis.
	atomsPerRank := float64(in.Atoms) / float64(ranks)
	pairsPerRank := float64(in.HalfPairs) / float64(ranks)

	bx, err := boxForEdge(in.Edge)
	if err != nil {
		return p, err
	}
	slab := bx
	slab.Hi[0] = slab.Lo[0] + slabW
	slab.Periodic[0] = false
	var compute float64
	if threads == 1 {
		compute = 2*pairsPerRank*m.CPair + atomsPerRank*m.CAtom
	} else {
		dec, err := core.DecomposeAxes(slab, nil, []vec.Axis{vec.Y, vec.Z}, reach)
		if err != nil {
			return p, fmt.Errorf("%w: per-rank SDC: %v", ErrInsufficientParallelism, err)
		}
		spc := dec.SubdomainsPerColor()
		colors := dec.NumColors()
		rounds := math.Ceil(float64(spc) / float64(threads))
		perColorPairs := pairsPerRank / float64(colors)
		sweep := 0.0
		for c := 0; c < colors; c++ {
			work := perColorPairs / float64(spc) * rounds * m.CPair * m.Loc[2]
			sweep += work*drag(m.Beta, threads) + m.barrier(threads)
		}
		embed := atomsPerRank * m.CAtom / float64(threads) * drag(m.Beta, threads)
		sched := 2 * m.Sched * math.Sqrt(atomsPerRank)
		compute = 2*sweep + sched + embed
	}

	// Communication: ghost count = atoms within `reach` of the two slab
	// faces = 2·reach/slabW of the rank's atoms. 8 messages per step
	// (4 phases × 2 neighbors), each moving the ghost set once.
	ghosts := atomsPerRank * 2 * reach / slabW
	comm := 0.0
	if ranks > 1 {
		comm = 8*ic.Latency + 4*ghosts*ic.PerAtom
	}
	total := compute + comm

	serial, err := m.SerialTime(in)
	if err != nil {
		return p, err
	}
	p.Speedup = serial / total
	p.CommFraction = comm / total
	return p, nil
}

// BestHybridMix sweeps all factorizations ranks×threads = totalCores
// and returns the predictions sorted as given (ranks ascending),
// plus the index of the fastest mix. Infeasible mixes are skipped.
func (m Machine) BestHybridMix(totalCores int, in Input, ic Interconnect) ([]HybridPoint, int, error) {
	if totalCores < 1 {
		return nil, 0, fmt.Errorf("perfmodel: totalCores %d must be >= 1", totalCores)
	}
	var out []HybridPoint
	best := -1
	for ranks := 1; ranks <= totalCores; ranks++ {
		if totalCores%ranks != 0 {
			continue
		}
		pt, err := m.TimeHybrid(ranks, totalCores/ranks, in, ic)
		if err != nil {
			continue // infeasible mix
		}
		out = append(out, pt)
		if best < 0 || pt.Speedup > out[best].Speedup {
			best = len(out) - 1
		}
	}
	if len(out) == 0 {
		return nil, 0, fmt.Errorf("perfmodel: no feasible mix for %d cores", totalCores)
	}
	return out, best, nil
}
