package perfmodel

import (
	"fmt"

	"sdcmd/internal/box"
	"sdcmd/internal/lattice"
	"sdcmd/internal/neighbor"
	"sdcmd/internal/vec"
)

// boxForEdge builds the cubic periodic cell of one paper case.
func boxForEdge(edge float64) (box.Box, error) {
	return box.New(vec.Zero, vec.Splat(edge))
}

// MeasurePairsPerAtom builds a real neighbor list on a scaled bcc-Fe
// replica (same density as every paper case) and returns the measured
// half-list pairs per atom — the workload statistic the model scales to
// the full case sizes. cells >= 4 keeps the sample representative;
// cutoff/skin should match the simulator's.
func MeasurePairsPerAtom(cells int, cutoff, skin float64) (float64, error) {
	if cells < 4 {
		return 0, fmt.Errorf("perfmodel: need >= 4 cells for a representative sample, got %d", cells)
	}
	cfg, err := lattice.ScaledCase(cells)
	if err != nil {
		return 0, err
	}
	list, err := neighbor.Builder{Cutoff: cutoff, Skin: skin, Half: true}.Build(cfg.Box, cfg.Pos)
	if err != nil {
		return 0, err
	}
	return list.Stats().MeanLen, nil
}

// InputForCase scales the measured pairs-per-atom statistic to one of
// the paper's four cases.
func InputForCase(c lattice.Case, pairsPerAtom float64) (Input, error) {
	n := c.CellsPerSide()
	if n == 0 {
		return Input{}, fmt.Errorf("perfmodel: unknown case %v", c)
	}
	if !(pairsPerAtom > 0) {
		return Input{}, fmt.Errorf("perfmodel: pairs per atom %g must be positive", pairsPerAtom)
	}
	atoms := c.Atoms()
	return Input{
		Atoms:     atoms,
		HalfPairs: int(pairsPerAtom * float64(atoms)),
		Edge:      float64(n) * lattice.FeLatticeConstant,
	}, nil
}
