package perfmodel

import (
	"math"
	"testing"

	"sdcmd/internal/core"
	"sdcmd/internal/lattice"
	"sdcmd/internal/strategy"
)

func TestTopologyValidation(t *testing.T) {
	bad := []Topology{
		{Sockets: 0, CoresPerSocket: 4},
		{Sockets: 4, CoresPerSocket: 0},
		{Sockets: 4, CoresPerSocket: 4, RemotePenalty: -1},
		{Sockets: 4, CoresPerSocket: 4, HaloFraction: 1.5},
	}
	for i, topo := range bad {
		if topo.Validate() == nil {
			t.Errorf("topology %d accepted", i)
		}
	}
	good := XeonE7320Topology()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Cores() != 16 {
		t.Errorf("testbed cores = %d", good.Cores())
	}
}

func TestPlacementStrings(t *testing.T) {
	if NaivePlacement.String() != "naive" || NUMAAwarePlacement.String() != "numa-aware" {
		t.Error("placement strings wrong")
	}
	if Placement(7).String() != "Placement(7)" {
		t.Error("unknown placement string wrong")
	}
}

func TestSingleSocketHasNoNUMAEffect(t *testing.T) {
	topo := XeonE7320Topology()
	for p := 1; p <= topo.CoresPerSocket; p++ {
		if d := topo.NUMADrag(p, NaivePlacement); d != 1 {
			t.Errorf("naive drag at %d threads = %g, want 1", p, d)
		}
		if d := topo.NUMADrag(p, NUMAAwarePlacement); d != 1 {
			t.Errorf("aware drag at %d threads = %g, want 1", p, d)
		}
	}
}

func TestNUMAAwareBeatsNaiveOffSocket(t *testing.T) {
	topo := XeonE7320Topology()
	for _, p := range []int{5, 8, 12, 16} {
		naive := topo.NUMADrag(p, NaivePlacement)
		aware := topo.NUMADrag(p, NUMAAwarePlacement)
		if naive <= 1 || aware <= 1 {
			t.Errorf("at %d threads drags must exceed 1 (naive %g, aware %g)", p, naive, aware)
		}
		if aware >= naive {
			t.Errorf("at %d threads aware %g >= naive %g", p, aware, naive)
		}
	}
	// Naive drag grows with the off-socket share.
	if topo.NUMADrag(16, NaivePlacement) <= topo.NUMADrag(8, NaivePlacement) {
		t.Error("naive drag must grow with thread count")
	}
	// Overflow beyond physical cores is clamped.
	if topo.NUMADrag(99, NaivePlacement) != topo.NUMADrag(16, NaivePlacement) {
		t.Error("drag beyond core count must clamp")
	}
}

func TestTimeNUMA(t *testing.T) {
	m := XeonE7320()
	topo := XeonE7320Topology()
	ppa := 7.0
	in, err := InputForCase(lattice.Large3, ppa)
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Time(strategy.SDC, core.Dim2, 16, in)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := m.TimeNUMA(strategy.SDC, core.Dim2, 16, in, topo, NaivePlacement)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := m.TimeNUMA(strategy.SDC, core.Dim2, 16, in, topo, NUMAAwarePlacement)
	if err != nil {
		t.Fatal(err)
	}
	if !(naive > aware && aware > base) {
		t.Errorf("ordering violated: base %g, aware %g, naive %g", base, aware, naive)
	}
	// Serial is untouched by placement.
	s1, _ := m.TimeNUMA(strategy.Serial, core.Dim2, 1, in, topo, NaivePlacement)
	s2, _ := m.SerialTime(in)
	if s1 != s2 {
		t.Error("serial time must ignore NUMA placement")
	}
	// Bad topology rejected.
	if _, err := m.TimeNUMA(strategy.SDC, core.Dim2, 8, in, Topology{}, NaivePlacement); err == nil {
		t.Error("bad topology accepted")
	}
}

func TestNUMAImprovementGrowsWithThreads(t *testing.T) {
	m := XeonE7320()
	topo := XeonE7320Topology()
	in, err := InputForCase(lattice.Large3, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, p := range []int{4, 8, 12, 16} {
		imp, err := m.NUMAImprovement(strategy.SDC, core.Dim2, p, in, topo)
		if err != nil {
			t.Fatal(err)
		}
		if p == 4 && math.Abs(imp) > 1e-12 {
			t.Errorf("on-socket improvement = %g, want 0", imp)
		}
		if imp < prev {
			t.Errorf("improvement not monotone at %d threads: %g < %g", p, imp, prev)
		}
		prev = imp
	}
	// At 16 threads the predicted gain is substantial (tens of
	// percent), the quantitative motivation for the paper's future
	// work.
	if prev < 0.15 || prev > 0.45 {
		t.Errorf("improvement @16 = %g, want a substantial fraction", prev)
	}
}

func TestSpeedupNUMA(t *testing.T) {
	m := XeonE7320()
	topo := XeonE7320Topology()
	in, err := InputForCase(lattice.Large3, 7)
	if err != nil {
		t.Fatal(err)
	}
	sN, err := m.SpeedupNUMA(strategy.SDC, core.Dim2, 16, in, topo, NaivePlacement)
	if err != nil {
		t.Fatal(err)
	}
	sA, err := m.SpeedupNUMA(strategy.SDC, core.Dim2, 16, in, topo, NUMAAwarePlacement)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m.Speedup(strategy.SDC, core.Dim2, 16, in)
	if err != nil {
		t.Fatal(err)
	}
	if !(sN < sA && sA < plain) {
		t.Errorf("speedup ordering violated: naive %g, aware %g, plain %g", sN, sA, plain)
	}
	if _, err := m.SpeedupNUMA(strategy.SDC, core.Dim2, 16, Input{}, topo, NaivePlacement); err == nil {
		t.Error("bad input accepted")
	}
}
