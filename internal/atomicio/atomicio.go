package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// tempSeq makes temp names unique within the process; the PID keeps
// concurrent processes over one directory apart. Mutex-guarded on
// purpose: sync/atomic is reserved for the CS reducer and telemetry.
var (
	tempMu  sync.Mutex
	tempSeq uint64
)

// tempName derives a unique sibling temp path for path. The ".tmp-"
// infix is the recovery contract: SweepTemps removes exactly these.
func tempName(path string) string {
	tempMu.Lock()
	tempSeq++
	n := tempSeq
	tempMu.Unlock()
	return fmt.Sprintf("%s.tmp-%d-%d", path, os.Getpid(), n)
}

// WriteFile atomically and durably replaces path with the bytes write
// produces: they go to a unique temp file in the same directory, are
// fsynced, the temp is renamed over path, and the parent directory is
// fsynced so the rename itself survives a power cut. A crash at any
// point leaves either the previous complete file or the new one —
// never a torn file — plus at most one orphaned temp for SweepTemps.
func WriteFile(fsys FS, path string, write func(io.Writer) error) error {
	if fsys == nil {
		fsys = OS
	}
	dir := filepath.Dir(path)
	tmp := tempName(path)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("atomicio: temp for %s: %w", path, err)
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp, path)
	}
	if err != nil {
		// Best-effort cleanup; a survivor is caught by SweepTemps.
		_ = fsys.Remove(tmp)
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err := SyncDir(fsys, dir); err != nil {
		// The content is in place but the rename may not be durable yet;
		// report it so callers can retry or degrade.
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	return nil
}

// WriteFileData is WriteFile over a byte slice.
func WriteFileData(fsys FS, path string, data []byte) error {
	return WriteFile(fsys, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// SyncDir fsyncs a directory, making previously renamed entries in it
// durable.
func SyncDir(fsys FS, dir string) error {
	if fsys == nil {
		fsys = OS
	}
	if dir == "" {
		dir = "."
	}
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("atomicio: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("atomicio: sync dir %s: %w", dir, err)
	}
	return nil
}

// IsTemp reports whether a file name is an atomic-write temp left by a
// crashed WriteFile (this package's naming, or the pre-atomicio
// checkpoint writer which used the same ".tmp-" infix).
func IsTemp(name string) bool {
	return strings.Contains(name, ".tmp-")
}

// SweepTemps removes orphaned atomic-write temp files from dir — the
// startup recovery step after a crash mid-WriteFile. A non-empty
// prefix restricts the sweep to temps for that base name (e.g. one
// checkpoint's), so unrelated writers sharing the directory are left
// alone. Returns how many were removed and the first removal error;
// the sweep keeps going past individual failures.
func SweepTemps(fsys FS, dir, prefix string) (int, error) {
	if fsys == nil {
		fsys = OS
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("atomicio: sweep %s: %w", dir, err)
	}
	removed := 0
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !IsTemp(name) {
			continue
		}
		if prefix != "" && !strings.HasPrefix(name, prefix+".tmp-") {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		removed++
	}
	return removed, firstErr
}
