// Package atomicio is the durable-write substrate shared by every
// on-disk artifact in the repo: guard checkpoints, serve drain
// manifests and the content-addressed result store. It factors the one
// discipline all of them need — temp file + fsync + rename + parent-
// directory fsync — behind a pluggable FS interface, so tests can fail
// any open/write/sync/rename at a chosen call count and prove the
// recovery story instead of assuming it.
package atomicio

import (
	"io"
	"io/fs"
	"os"
)

// File is the slice of *os.File the atomic-write discipline needs.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file (or directory) to stable storage.
	Sync() error
	// Close releases the descriptor.
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS abstracts the filesystem operations behind every durable write
// and recovery scan. The production implementation is OS; tests wrap
// it (or replace it) to inject deterministic faults at any call site.
type FS interface {
	// OpenFile opens name with the given flags; it is the single entry
	// point for creating temp files, reading entries back and opening
	// directories for fsync.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadFile reads the whole file (one verifiable read call site).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// Stat reports file metadata.
	Stat(name string) (fs.FileInfo, error)
}

// OS is the production FS: the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return an explicit nil interface, not a typed-nil *os.File.
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
