package atomicio

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileData(OS, path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileData(OS, path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "new" {
		t.Errorf("content %q, want new", b)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after two writes, want 1 (no temps)", len(entries))
	}
}

// failFS fails one operation by name the Nth time it is reached.
type failFS struct {
	FS
	op    string
	calls map[string]int
	at    int
}

var errInjected = errors.New("injected fault")

func (f *failFS) tick(op string) error {
	f.calls[op]++
	if op == f.op && f.calls[op] == f.at {
		return errInjected
	}
	return nil
}

func (f *failFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.tick("open"); err != nil {
		return nil, err
	}
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failFile{File: file, fs: f}, nil
}

func (f *failFS) Rename(oldpath, newpath string) error {
	if err := f.tick("rename"); err != nil {
		return err
	}
	return f.FS.Rename(oldpath, newpath)
}

type failFile struct {
	File
	fs *failFS
}

func (f *failFile) Write(p []byte) (int, error) {
	if err := f.fs.tick("write"); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *failFile) Sync() error {
	if err := f.fs.tick("sync"); err != nil {
		return err
	}
	return f.File.Sync()
}

// TestWriteFileFailureKeepsOldContent: whichever step of the pipeline
// fails, the destination keeps its previous complete content and the
// error surfaces.
func TestWriteFileFailureKeepsOldContent(t *testing.T) {
	for _, tc := range []struct {
		op string
		at int
	}{
		{"open", 1},   // temp creation
		{"write", 1},  // payload write
		{"sync", 1},   // file fsync
		{"rename", 1}, // commit rename
		{"open", 2},   // parent-dir open for fsync
		{"sync", 2},   // parent-dir fsync
	} {
		t.Run(tc.op+"-"+string(rune('0'+tc.at)), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "f")
			if err := WriteFileData(OS, path, []byte("old")); err != nil {
				t.Fatal(err)
			}
			ffs := &failFS{FS: OS, op: tc.op, at: tc.at, calls: map[string]int{}}
			err := WriteFileData(ffs, path, []byte("new"))
			if !errors.Is(err, errInjected) {
				t.Fatalf("want injected error, got %v", err)
			}
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			// The dir-fsync steps run after the commit rename: the new
			// content is legitimately in place, just not yet durable.
			want := "old"
			if tc.at == 2 {
				want = "new"
			}
			if string(b) != want {
				t.Errorf("after %s fault: content %q, want %q", tc.op, b, want)
			}
		})
	}
}

func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	mustWrite := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("a.json", "keep")
	mustWrite("a.json.tmp-123-4", "orphan")
	mustWrite("b.sdck.tmp-99-1", "orphan")
	mustWrite("c.tmpl", "keep") // .tmpl is not a temp

	n, err := SweepTemps(OS, dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("swept %d temps, want 2", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if got := strings.Join(names, ","); got != "a.json,c.tmpl" {
		t.Errorf("survivors %q, want a.json,c.tmpl", got)
	}
}

func TestSweepTempsPrefixScoped(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"ckpt.sdck.tmp-1-1", "other.json.tmp-1-2"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, err := SweepTemps(OS, dir, "ckpt.sdck")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("swept %d, want 1 (prefix-scoped)", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "other.json.tmp-1-2")); err != nil {
		t.Errorf("unrelated temp removed by scoped sweep: %v", err)
	}
}

func TestWriteFileCallbackError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	werr := errors.New("payload failure")
	if err := WriteFile(OS, path, func(io.Writer) error { return werr }); !errors.Is(err, werr) {
		t.Fatalf("want payload error, got %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Error("failed write materialized the destination")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("%d leftover files after failed write, want 0", len(entries))
	}
}
