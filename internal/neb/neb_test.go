package neb

import (
	"math"
	"testing"

	"sdcmd/internal/force"
	"sdcmd/internal/lattice"
	"sdcmd/internal/md"
	"sdcmd/internal/potential"
	"sdcmd/internal/vec"
)

func TestConfigValidation(t *testing.T) {
	pot := potential.DefaultFe()
	cfg0 := lattice.MustBuild(lattice.BCC, 2, 2, 2, 2.8665)
	posA := cfg0.Pos
	bad := []Config{
		{Pot: nil, Box: cfg0.Box, Images: 3},
		{Pot: pot, Box: cfg0.Box, Images: 0},
		{Pot: pot, Box: cfg0.Box, Images: 3, Spring: -1},
		{Pot: pot, Box: cfg0.Box, Images: 3, Dt: -1},
		{Pot: pot, Box: cfg0.Box, Images: 3, FTol: -1},
	}
	for i, c := range bad {
		if _, err := FindPath(c, posA, posA); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := Config{Pot: pot, Box: cfg0.Box, Images: 1, MaxSteps: 1}
	if _, err := FindPath(good, posA, posA[:3]); err == nil {
		t.Error("mismatched endpoints accepted")
	}
	if _, err := FindPath(good, nil, nil); err == nil {
		t.Error("empty endpoints accepted")
	}
}

func TestTrivialPathHasNoBarrier(t *testing.T) {
	// Identical endpoints: the band stays put, barrier 0. (3 cells per
	// side: a 2-cell box has pairs at exactly L/2 whose minimum-image
	// tie-breaking spoils the perfect-lattice force cancellation.)
	pot := potential.DefaultFe()
	cfg0 := lattice.MustBuild(lattice.BCC, 3, 3, 3, 2.8665)
	res, err := FindPath(Config{Pot: pot, Box: cfg0.Box, Images: 3, MaxSteps: 50}, cfg0.Pos, cfg0.Pos)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Barrier) > 1e-9 {
		t.Errorf("trivial barrier = %g", res.Barrier)
	}
	if !res.Converged {
		t.Error("trivial band should converge immediately")
	}
}

// vacancyStates builds the two relaxed endpoints of a vacancy hop: the
// vacancy at a site, and the configuration after a nearest neighbor has
// hopped into it.
func vacancyStates(t *testing.T, pot potential.EAM) (bx [][]vec.Vec3, cell lattice.Config) {
	t.Helper()
	const cells = 3
	base := lattice.MustBuild(lattice.BCC, cells, cells, cells, lattice.FeLatticeConstant)

	// Choose a central site v and its nearest neighbor n.
	vSite := base.Pos[base.N()/2]
	vIdx, _ := base.NearestAtom(vSite)
	vPos := base.Pos[vIdx]
	if err := base.RemoveAtom(vIdx); err != nil {
		t.Fatal(err)
	}
	nIdx, nDist := base.NearestAtom(vPos)
	want := lattice.FeLatticeConstant * math.Sqrt(3) / 2
	if math.Abs(nDist-want) > 1e-9 {
		t.Fatalf("neighbor distance %g, want %g", nDist, want)
	}

	relax := func(c *lattice.Config) []vec.Vec3 {
		sys := md.FromLattice(c)
		mcfg := md.DefaultConfig()
		mcfg.Pot = pot
		sim, err := md.NewSimulator(sys, mcfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		res, err := sim.Minimize(4000, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("endpoint relaxation did not converge: %+v", res)
		}
		out := make([]vec.Vec3, sys.N())
		copy(out, sys.Pos)
		return out
	}

	stateA := relax(base.Clone())

	hopped := base.Clone()
	hopped.Pos[nIdx] = vPos // neighbor jumps into the vacancy
	stateB := relax(hopped)

	return [][]vec.Vec3{stateA, stateB}, *base
}

func TestVacancyMigrationBarrier(t *testing.T) {
	// The headline NEB calculation: vacancy hop in bcc Fe. Experiment
	// gives ≈0.55-0.65 eV; a simple analytic EAM lands within a factor
	// of a few, and the profile must be a single positive hump with
	// (near-)symmetric endpoints.
	pot := potential.MustNewFeEAM(potential.JohnsonFeParams())
	states, cell := vacancyStates(t, pot)
	res, err := FindPath(Config{
		Pot:      pot,
		Box:      cell.Box,
		Images:   5,
		MaxSteps: 1500,
		FTol:     0.02,
		Climb:    true,
	}, states[0], states[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Barrier <= 0 {
		t.Fatalf("vacancy migration barrier = %g, want positive", res.Barrier)
	}
	if res.Barrier > 5 {
		t.Errorf("barrier %g eV implausibly high", res.Barrier)
	}
	// Endpoints are symmetric by construction: forward ≈ reverse.
	if math.Abs(res.Barrier-res.ReverseBarrier) > 0.15*res.Barrier+0.05 {
		t.Errorf("asymmetric barriers: %g vs %g", res.Barrier, res.ReverseBarrier)
	}
	// Saddle is an interior image.
	if res.SaddleImage == 0 || res.SaddleImage == len(res.Energies)-1 {
		t.Errorf("saddle at endpoint (image %d)", res.SaddleImage)
	}
	// With the climbing image the profile rises monotonically to the
	// saddle and falls after it (small tolerance for quench noise).
	// (discrete images leave ~0.02 eV shoulders next to the climbing
	// image; only larger violations indicate a broken band)
	for k := 1; k <= res.SaddleImage; k++ {
		if res.Energies[k] < res.Energies[k-1]-0.05 {
			t.Errorf("profile dips before saddle at image %d: %v", k, res.Energies)
			break
		}
	}
	for k := res.SaddleImage + 1; k < len(res.Energies); k++ {
		if res.Energies[k] > res.Energies[k-1]+0.05 {
			t.Errorf("profile rises after saddle at image %d: %v", k, res.Energies)
			break
		}
	}
	t.Logf("vacancy migration barrier: %.3f eV (reverse %.3f), %d steps, converged=%v",
		res.Barrier, res.ReverseBarrier, res.Steps, res.Converged)
}

func TestPathEndpointsFixed(t *testing.T) {
	pot := potential.MustNewFeEAM(potential.JohnsonFeParams())
	states, cell := vacancyStates(t, pot)
	res, err := FindPath(Config{Pot: pot, Box: cell.Box, Images: 3, MaxSteps: 50, FTol: 1e-4}, states[0], states[1])
	if err != nil {
		t.Fatal(err)
	}
	for i := range states[0] {
		if res.Path[0][i] != states[0][i] {
			t.Fatal("endpoint A moved")
		}
		if res.Path[len(res.Path)-1][i] != states[1][i] {
			t.Fatal("endpoint B moved")
		}
	}
	// Energies match direct evaluation at the endpoints.
	_, eA, _, _ := force.Reference(pot, cell.Box, states[0])
	if math.Abs(res.Energies[0]-eA) > 1e-9 {
		t.Errorf("endpoint energy %g vs %g", res.Energies[0], eA)
	}
}
