// Package neb implements the nudged elastic band method for minimum
// energy paths and migration barriers — the standard companion to the
// point-defect energetics EAM was built for (e.g. the vacancy migration
// barrier in bcc iron, ≈0.55-0.65 eV experimentally). A chain of
// replicas ("images") interpolates between two relaxed states; each
// image feels the true force with its parallel component replaced by a
// spring force along the path tangent, and the chain is quenched until
// perpendicular forces vanish.
//
// The implementation uses the improved tangent of Henkelman & Jónsson
// (2000) and quenched velocity-Verlet (the original NEB minimizer).
// Forces come from the O(N²) reference engine: barrier calculations use
// small cells where exactness beats list bookkeeping.
package neb

import (
	"fmt"
	"math"

	"sdcmd/internal/box"
	"sdcmd/internal/force"
	"sdcmd/internal/potential"
	"sdcmd/internal/vec"
)

// Config parameterizes a band relaxation.
type Config struct {
	// Pot is the potential; Box the periodic cell.
	Pot potential.EAM
	Box box.Box
	// Images is the number of movable interior images (>= 1).
	Images int
	// Spring is the band stiffness k in eV/Å² (default 5).
	Spring float64
	// FTol is the convergence threshold on the largest perpendicular
	// force component (eV/Å, default 0.01).
	FTol float64
	// MaxSteps bounds the quench (default 2000).
	MaxSteps int
	// Dt is the quench timestep in ps (default 2 fs); Mass the atom
	// mass (default 1 in quench units — only the ratio matters).
	Dt, Mass float64
	// Climb enables climbing-image NEB: the highest image feels no
	// spring and its parallel true-force component is inverted, driving
	// it exactly onto the saddle point (Henkelman, Uberuaga & Jónsson
	// 2000). Without it, plain NEB brackets the saddle between images.
	Climb bool
}

func (c *Config) defaults() error {
	if c.Pot == nil {
		return fmt.Errorf("neb: nil potential")
	}
	if c.Images < 1 {
		return fmt.Errorf("neb: need >= 1 interior image, got %d", c.Images)
	}
	if c.Spring == 0 {
		c.Spring = 5
	}
	if c.Spring < 0 {
		return fmt.Errorf("neb: negative spring %g", c.Spring)
	}
	if c.FTol == 0 {
		c.FTol = 0.01
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 2000
	}
	if c.Dt == 0 {
		c.Dt = 2e-3
	}
	if c.Mass == 0 {
		c.Mass = 1
	}
	if !(c.FTol > 0) || !(c.Dt > 0) || !(c.Mass > 0) || c.MaxSteps < 1 {
		return fmt.Errorf("neb: bad numerics %+v", *c)
	}
	return nil
}

// Result reports a converged (or exhausted) band.
type Result struct {
	// Energies holds E per image including the fixed endpoints.
	Energies []float64
	// Barrier is max(E) − E[0] (the forward activation energy).
	Barrier float64
	// ReverseBarrier is max(E) − E[last].
	ReverseBarrier float64
	// SaddleImage indexes the highest image.
	SaddleImage int
	// Converged reports whether FTol was reached within MaxSteps.
	Converged bool
	// Steps taken.
	Steps int
	// Path holds the final image coordinates (including endpoints).
	Path [][]vec.Vec3
}

// FindPath relaxes a band between two endpoint configurations (which
// should already be local minima; they stay fixed). posA and posB must
// have the same length.
func FindPath(cfg Config, posA, posB []vec.Vec3) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	n := len(posA)
	if n == 0 || len(posB) != n {
		return nil, fmt.Errorf("neb: endpoints have %d and %d atoms", n, len(posB))
	}
	m := cfg.Images + 2 // total images including endpoints

	// Linear interpolation along minimum-image displacements so the
	// initial band does not tear across periodic boundaries.
	disp := make([]vec.Vec3, n)
	for i := 0; i < n; i++ {
		disp[i] = cfg.Box.MinImage(posB[i], posA[i])
	}
	path := make([][]vec.Vec3, m)
	path[0] = append([]vec.Vec3(nil), posA...)
	path[m-1] = append([]vec.Vec3(nil), posB...)
	for k := 1; k < m-1; k++ {
		t := float64(k) / float64(m-1)
		img := make([]vec.Vec3, n)
		for i := 0; i < n; i++ {
			img[i] = posA[i].AddScaled(t, disp[i])
		}
		path[k] = img
	}

	vel := make([][]vec.Vec3, m)
	forces := make([][]vec.Vec3, m)
	energies := make([]float64, m)
	for k := range vel {
		vel[k] = make([]vec.Vec3, n)
		forces[k] = make([]vec.Vec3, n)
	}
	evaluate := func(k int) {
		f, e, _, _ := force.Reference(cfg.Pot, cfg.Box, path[k])
		copy(forces[k], f)
		energies[k] = e
	}
	for k := 0; k < m; k++ {
		evaluate(k)
	}

	res := &Result{}
	for step := 1; step <= cfg.MaxSteps; step++ {
		res.Steps = step
		climber := -1
		if cfg.Climb {
			climber = 1
			for k := 2; k < m-1; k++ {
				if energies[k] > energies[climber] {
					climber = k
				}
			}
		}
		worst := 0.0
		for k := 1; k < m-1; k++ {
			tau := tangent(cfg.Box, path, energies, k)
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += forces[k][i].Dot(tau[i])
			}
			if k == climber {
				// Climbing image: invert the parallel component, no
				// spring — the image ascends the band to the saddle.
				for i := 0; i < n; i++ {
					forces[k][i] = forces[k][i].AddScaled(-2*dot, tau[i])
					if fn := forces[k][i].Norm(); fn > worst {
						worst = fn
					}
				}
				continue
			}
			// Spring force along the tangent (plain NEB).
			dNext := pathDistance(cfg.Box, path[k+1], path[k])
			dPrev := pathDistance(cfg.Box, path[k], path[k-1])
			fSpring := cfg.Spring * (dNext - dPrev)
			// Project the true force perpendicular to the tangent and
			// add the spring component parallel to it.
			for i := 0; i < n; i++ {
				forces[k][i] = forces[k][i].Sub(tau[i].Scale(dot)).AddScaled(fSpring, tau[i])
				if fn := forces[k][i].Norm(); fn > worst {
					worst = fn
				}
			}
		}
		if worst < cfg.FTol {
			res.Converged = true
			break
		}
		// Quenched velocity-Verlet on interior images.
		for k := 1; k < m-1; k++ {
			// Quench: zero velocity components opposing the force.
			vdotf := 0.0
			fnorm2 := 0.0
			for i := 0; i < n; i++ {
				vdotf += vel[k][i].Dot(forces[k][i])
				fnorm2 += forces[k][i].Norm2()
			}
			if vdotf <= 0 || fnorm2 == 0 {
				for i := range vel[k] {
					vel[k][i] = vec.Vec3{}
				}
			} else {
				scale := vdotf / fnorm2
				for i := 0; i < n; i++ {
					vel[k][i] = forces[k][i].Scale(scale)
				}
			}
			for i := 0; i < n; i++ {
				vel[k][i] = vel[k][i].AddScaled(cfg.Dt/cfg.Mass, forces[k][i])
				path[k][i] = cfg.Box.Wrap(path[k][i].AddScaled(cfg.Dt, vel[k][i]))
			}
			evaluate(k)
		}
	}

	res.Energies = append([]float64(nil), energies...)
	res.Path = path
	res.SaddleImage = 0
	for k, e := range energies {
		if e > energies[res.SaddleImage] {
			res.SaddleImage = k
		}
	}
	res.Barrier = energies[res.SaddleImage] - energies[0]
	res.ReverseBarrier = energies[res.SaddleImage] - energies[m-1]
	return res, nil
}

// tangent computes the improved (energy-weighted upwind) tangent of
// image k, normalized over the whole 3N-dimensional band coordinate.
func tangent(bx box.Box, path [][]vec.Vec3, energies []float64, k int) []vec.Vec3 {
	n := len(path[k])
	plus := make([]vec.Vec3, n)
	minus := make([]vec.Vec3, n)
	for i := 0; i < n; i++ {
		plus[i] = bx.MinImage(path[k+1][i], path[k][i])
		minus[i] = bx.MinImage(path[k][i], path[k-1][i])
	}
	eP, e0, eM := energies[k+1], energies[k], energies[k-1]
	tau := make([]vec.Vec3, n)
	switch {
	case eP > e0 && e0 > eM:
		copy(tau, plus)
	case eP < e0 && e0 < eM:
		copy(tau, minus)
	default:
		// At extrema blend by energy differences (Henkelman's rule).
		dEmax := math.Max(math.Abs(eP-e0), math.Abs(eM-e0))
		dEmin := math.Min(math.Abs(eP-e0), math.Abs(eM-e0))
		wPlus, wMinus := dEmax, dEmin
		if eP < eM {
			wPlus, wMinus = dEmin, dEmax
		}
		for i := 0; i < n; i++ {
			tau[i] = plus[i].Scale(wPlus).Add(minus[i].Scale(wMinus))
		}
	}
	norm2 := 0.0
	for i := 0; i < n; i++ {
		norm2 += tau[i].Norm2()
	}
	if norm2 > 0 {
		inv := 1 / math.Sqrt(norm2)
		for i := 0; i < n; i++ {
			tau[i] = tau[i].Scale(inv)
		}
	}
	return tau
}

// pathDistance is the 3N-dimensional distance between adjacent images.
func pathDistance(bx box.Box, a, b []vec.Vec3) float64 {
	sum := 0.0
	for i := range a {
		sum += bx.MinImage(a[i], b[i]).Norm2()
	}
	return math.Sqrt(sum)
}
