// Package core implements the paper's primary contribution: the
// Spatial Decomposition Coloring (SDC) method (§II.B). The simulation
// box is split into subdomains whose edge along every decomposed axis is
// at least twice the interaction reach, with an even subdomain count per
// decomposed axis. Subdomains are colored red-black style — 2 colors in
// 1D, 4 in 2D, 8 in 3D — so no two subdomains of the same color are
// adjacent (including across periodic boundaries). All subdomains of one
// color can then run the irregular reductions rho[j] += …,
// force[j] -= … concurrently without locks: an atom's writes reach at
// most `reach` beyond its own subdomain, and same-colored subdomains are
// separated by at least 2·reach of differently-colored space.
//
// The atom partition is stored in the paper's exact CSR arrays
// (Fig. 7/8): PStart is pstart[], PartIndex is partindex[].
package core

import (
	"errors"
	"fmt"
	"sort"

	"sdcmd/internal/box"
	"sdcmd/internal/vec"
)

// Dim selects how many axes the decomposition splits.
type Dim int

// Decomposition dimensionalities. Dim1 splits x, Dim2 splits x and y,
// Dim3 splits all three axes, matching the paper's Figs. 4-6.
const (
	Dim1 Dim = 1
	Dim2 Dim = 2
	Dim3 Dim = 3
)

// String returns "1D", "2D" or "3D".
func (d Dim) String() string {
	switch d {
	case Dim1, Dim2, Dim3:
		return fmt.Sprintf("%dD", int(d))
	}
	return fmt.Sprintf("Dim(%d)", int(d))
}

// Colors returns the number of colors the dimensionality needs: 2^d.
func (d Dim) Colors() int {
	switch d {
	case Dim1:
		return 2
	case Dim2:
		return 4
	case Dim3:
		return 8
	}
	return 0
}

// Axes returns which axes are decomposed.
func (d Dim) Axes() []vec.Axis {
	switch d {
	case Dim1:
		return []vec.Axis{vec.X}
	case Dim2:
		return []vec.Axis{vec.X, vec.Y}
	case Dim3:
		return []vec.Axis{vec.X, vec.Y, vec.Z}
	}
	return nil
}

// ErrTooFewSubdomains reports that the box cannot be split into at
// least two subdomains of edge >= 2·reach along some decomposed axis.
// This is exactly the restriction behind the blank cells of the paper's
// Table 1 (1D SDC on the small case at high thread counts).
var ErrTooFewSubdomains = errors.New("core: cannot form an even number (>=2) of subdomains with edge >= 2*reach")

// Decomposition is a colored spatial partition of a box plus the CSR
// atom partition over it.
type Decomposition struct {
	// Box is the decomposed cell.
	Box box.Box
	// Dim is the decomposition dimensionality.
	Dim Dim
	// Reach is the interaction reach (cutoff + skin) the coloring is
	// safe for.
	Reach float64
	// Counts is the number of subdomains along each axis (1 on
	// non-decomposed axes); even on decomposed axes.
	Counts [3]int

	// PStart/PartIndex are the paper's pstart[]/partindex[] arrays:
	// atoms of subdomain s are PartIndex[PStart[s]:PStart[s+1]].
	PStart    []int32
	PartIndex []int32

	// ColorOf[s] is the color (0..Colors-1) of subdomain s.
	ColorOf []int8
	// ByColor[c] lists the subdomains of color c.
	ByColor [][]int32

	// axes are the split axes (defaults to Dim.Axes()).
	axes []vec.Axis
	// contiguous records whether PartIndex is the identity permutation,
	// i.e. atoms are already stored in block-major subdomain order so
	// subdomain s occupies the dense range [PStart[s], PStart[s+1]).
	// Recomputed by every Rebin.
	contiguous bool
}

// Contiguous reports whether the atom partition is the identity
// permutation: subdomain s's atoms are exactly the dense index range
// [PStart[s], PStart[s+1]). This holds after the block-reorder pass
// (applying PartIndex as a NewToOld permutation to the system arrays and
// rebinning), and lets force sweeps walk packed blocks instead of
// indirecting through PartIndex.
func (d *Decomposition) Contiguous() bool { return d.contiguous }

// Axes returns the split axes.
func (d *Decomposition) Axes() []vec.Axis { return d.axes }

// Decompose builds the SDC decomposition of pos in bx for interaction
// reach (pass cutoff+skin so the coloring remains safe for the life of
// the neighbor list). It returns ErrTooFewSubdomains when the geometry
// does not admit the required splitting. Dim1/2/3 split x / x,y /
// x,y,z; to split a different axis subset use DecomposeAxes.
func Decompose(bx box.Box, pos []vec.Vec3, d Dim, reach float64) (*Decomposition, error) {
	if d.Colors() == 0 {
		return nil, fmt.Errorf("core: invalid dimensionality %v", d)
	}
	return DecomposeAxes(bx, pos, d.Axes(), reach)
}

// DecomposeAxes is Decompose for an explicit set of split axes — e.g.
// the hybrid rank-level engine splits only {Y, Z} inside its x-slab.
// The axes must be distinct and non-empty.
func DecomposeAxes(bx box.Box, pos []vec.Vec3, axes []vec.Axis, reach float64) (*Decomposition, error) {
	if len(axes) < 1 || len(axes) > 3 {
		return nil, fmt.Errorf("core: need 1-3 split axes, got %d", len(axes))
	}
	seen := [3]bool{}
	for _, a := range axes {
		if a < 0 || a > 2 {
			return nil, fmt.Errorf("core: invalid axis %d", a)
		}
		if seen[a] {
			return nil, fmt.Errorf("core: duplicate axis %v", a)
		}
		seen[a] = true
	}
	if !(reach > 0) {
		return nil, fmt.Errorf("core: reach %g must be positive", reach)
	}
	dec := &Decomposition{Box: bx, Dim: Dim(len(axes)), Reach: reach,
		Counts: [3]int{1, 1, 1}, axes: append([]vec.Axis(nil), axes...)}
	l := bx.Lengths()
	for _, a := range axes {
		n := int(l[a] / (2 * reach)) // largest count with edge >= 2*reach
		n -= n % 2                   // paper step 1: even count per axis
		if n < 2 {
			return nil, fmt.Errorf("%w: axis %v length %g, reach %g (max %d subdomains)",
				ErrTooFewSubdomains, a, l[a], reach, int(l[a]/(2*reach)))
		}
		dec.Counts[a] = n
	}
	dec.color()
	dec.Rebin(pos)
	return dec, nil
}

// NumSubdomains returns the total subdomain count.
func (d *Decomposition) NumSubdomains() int {
	return d.Counts[0] * d.Counts[1] * d.Counts[2]
}

// NumColors returns the color count (2^Dim).
func (d *Decomposition) NumColors() int { return d.Dim.Colors() }

// SubdomainsPerColor returns how many subdomains carry each color. The
// coloring makes this exact (counts are even on decomposed axes), and
// it is the parallelism bound the paper's §IV discusses: a thread count
// above this value cannot be fully utilized.
func (d *Decomposition) SubdomainsPerColor() int {
	return d.NumSubdomains() / d.NumColors()
}

// EdgeLengths returns the subdomain edge along each axis.
func (d *Decomposition) EdgeLengths() vec.Vec3 {
	l := d.Box.Lengths()
	return vec.New(
		l[0]/float64(d.Counts[0]),
		l[1]/float64(d.Counts[1]),
		l[2]/float64(d.Counts[2]),
	)
}

// Flatten maps subdomain grid coordinates to the flat subdomain index.
func (d *Decomposition) Flatten(c [3]int) int {
	return (c[0]*d.Counts[1]+c[1])*d.Counts[2] + c[2]
}

// Unflatten is the inverse of Flatten.
func (d *Decomposition) Unflatten(s int) [3]int {
	z := s % d.Counts[2]
	s /= d.Counts[2]
	y := s % d.Counts[1]
	x := s / d.Counts[1]
	return [3]int{x, y, z}
}

// SubdomainOf returns the flat subdomain index containing position p.
func (d *Decomposition) SubdomainOf(p vec.Vec3) int {
	f := d.Box.FracCoord(d.Box.Wrap(p))
	var c [3]int
	for a := 0; a < 3; a++ {
		c[a] = int(f[a] * float64(d.Counts[a]))
		if c[a] >= d.Counts[a] {
			c[a] = d.Counts[a] - 1
		}
		if c[a] < 0 {
			c[a] = 0
		}
	}
	return d.Flatten(c)
}

// color assigns the red-black generalization: the color is the parity
// bit-pattern of the subdomain coordinates along decomposed axes
// (paper step 2). Even counts per axis make the pattern wrap cleanly
// across periodic boundaries.
func (d *Decomposition) color() {
	ns := d.NumSubdomains()
	nc := d.NumColors()
	d.ColorOf = make([]int8, ns)
	d.ByColor = make([][]int32, nc)
	per := ns / nc
	for c := range d.ByColor {
		d.ByColor[c] = make([]int32, 0, per)
	}
	for s := 0; s < ns; s++ {
		co := d.Unflatten(s)
		color := 0
		for bit, a := range d.axes {
			color |= (co[a] & 1) << bit
		}
		d.ColorOf[s] = int8(color)
		d.ByColor[color] = append(d.ByColor[color], int32(s))
	}
}

// Rebin recomputes the pstart/partindex CSR partition for new
// positions. The paper performs this together with neighbor-list
// updates (§II.B step notes); its cost is a counting sort, O(N).
func (d *Decomposition) Rebin(pos []vec.Vec3) {
	ns := d.NumSubdomains()
	if cap(d.PStart) >= ns+1 {
		d.PStart = d.PStart[:ns+1]
		for i := range d.PStart {
			d.PStart[i] = 0
		}
	} else {
		d.PStart = make([]int32, ns+1)
	}
	if cap(d.PartIndex) >= len(pos) {
		d.PartIndex = d.PartIndex[:len(pos)]
	} else {
		d.PartIndex = make([]int32, len(pos))
	}
	sub := make([]int32, len(pos))
	for i, p := range pos {
		s := d.SubdomainOf(p)
		sub[i] = int32(s)
		d.PStart[s+1]++
	}
	for s := 0; s < ns; s++ {
		d.PStart[s+1] += d.PStart[s]
	}
	cursor := make([]int32, ns)
	copy(cursor, d.PStart[:ns])
	for i := range pos {
		s := sub[i]
		d.PartIndex[cursor[s]] = int32(i)
		cursor[s]++
	}
	d.contiguous = true
	for k, i := range d.PartIndex {
		if int(i) != k {
			d.contiguous = false
			break
		}
	}
}

// Atoms returns the atom indices of subdomain s (aliases storage).
func (d *Decomposition) Atoms(s int) []int32 {
	return d.PartIndex[d.PStart[s]:d.PStart[s+1]]
}

// AtomCount returns how many atoms subdomain s holds.
func (d *Decomposition) AtomCount(s int) int {
	return int(d.PStart[s+1] - d.PStart[s])
}

// ColorAtomCounts returns the total atoms per color — the load-balance
// figure the paper's uniform-density argument relies on.
func (d *Decomposition) ColorAtomCounts() []int {
	out := make([]int, d.NumColors())
	for s := 0; s < d.NumSubdomains(); s++ {
		out[d.ColorOf[s]] += d.AtomCount(s)
	}
	return out
}

// AdjacentSubdomains reports whether subdomains a and b share a face,
// edge or corner, honoring periodic wrap along periodic axes. A
// subdomain is not adjacent to itself.
func (d *Decomposition) AdjacentSubdomains(a, b int) bool {
	if a == b {
		return false
	}
	ca, cb := d.Unflatten(a), d.Unflatten(b)
	for ax := 0; ax < 3; ax++ {
		diff := ca[ax] - cb[ax]
		if diff < 0 {
			diff = -diff
		}
		if d.Box.Periodic[ax] && d.Counts[ax] > 1 {
			if wrapped := d.Counts[ax] - diff; wrapped < diff {
				diff = wrapped
			}
		}
		if diff > 1 {
			return false
		}
	}
	return true
}

// ForNeighborSubdomains calls fn with the flat index of every subdomain
// in the 3×3×3 neighborhood of s (including s itself), wrapping on
// periodic axes and suppressing duplicates when an axis has fewer than
// three subdomains.
func (d *Decomposition) ForNeighborSubdomains(s int, fn func(flat int)) {
	c := d.Unflatten(s)
	seen := make(map[int]struct{}, 27)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				n := [3]int{c[0] + dx, c[1] + dy, c[2] + dz}
				ok := true
				for ax := 0; ax < 3; ax++ {
					if n[ax] < 0 || n[ax] >= d.Counts[ax] {
						if !d.Box.Periodic[ax] {
							ok = false
							break
						}
						n[ax] = ((n[ax] % d.Counts[ax]) + d.Counts[ax]) % d.Counts[ax]
					}
				}
				if !ok {
					continue
				}
				flat := d.Flatten(n)
				if _, dup := seen[flat]; dup {
					continue
				}
				seen[flat] = struct{}{}
				fn(flat)
			}
		}
	}
}

// AdjacencyLists returns, for every subdomain, the ascending flat
// indices of its adjacent subdomains (the 3×3×3 neighborhood minus the
// subdomain itself, with periodic wrap). The task scheduler precomputes
// this once per decomposition to build its readiness DAG.
func (d *Decomposition) AdjacencyLists() [][]int32 {
	ns := d.NumSubdomains()
	adj := make([][]int32, ns)
	for s := 0; s < ns; s++ {
		var nbr []int32
		d.ForNeighborSubdomains(s, func(o int) {
			if o != s {
				nbr = append(nbr, int32(o))
			}
		})
		sort.Slice(nbr, func(i, j int) bool { return nbr[i] < nbr[j] })
		adj[s] = nbr
	}
	return adj
}

// Verify checks the SDC invariants; tests and debug builds call it
// after construction and after every Rebin.
//
//   - every decomposed axis has an even count >= 2 and edge >= 2·Reach
//   - per-color subdomain counts are exactly equal
//   - adjacent subdomains never share a color
//   - the CSR partition covers each atom exactly once and agrees with
//     SubdomainOf
func (d *Decomposition) Verify(pos []vec.Vec3) error {
	edges := d.EdgeLengths()
	for _, a := range d.axes {
		n := d.Counts[a]
		if n < 2 || n%2 != 0 {
			return fmt.Errorf("core: axis %v count %d not an even number >= 2", a, n)
		}
		if edges[a] < 2*d.Reach-1e-12 {
			return fmt.Errorf("core: axis %v edge %g < 2*reach %g", a, edges[a], 2*d.Reach)
		}
	}
	per := d.SubdomainsPerColor()
	for c, subs := range d.ByColor {
		if len(subs) != per {
			return fmt.Errorf("core: color %d has %d subdomains, want %d", c, len(subs), per)
		}
		for _, s := range subs {
			if int(d.ColorOf[s]) != c {
				return fmt.Errorf("core: subdomain %d in ByColor[%d] but ColorOf=%d", s, c, d.ColorOf[s])
			}
		}
	}
	ns := d.NumSubdomains()
	for s := 0; s < ns; s++ {
		var bad error
		d.ForNeighborSubdomains(s, func(o int) {
			if bad == nil && o != s && d.ColorOf[s] == d.ColorOf[o] {
				bad = fmt.Errorf("core: same-color subdomains %d and %d are adjacent", s, o)
			}
		})
		if bad != nil {
			return bad
		}
	}
	if len(d.PartIndex) != len(pos) {
		return fmt.Errorf("core: partition covers %d atoms, want %d", len(d.PartIndex), len(pos))
	}
	seen := make([]bool, len(pos))
	for s := 0; s < ns; s++ {
		for _, i := range d.Atoms(s) {
			if seen[i] {
				return fmt.Errorf("core: atom %d in two subdomains", i)
			}
			seen[i] = true
			if got := d.SubdomainOf(pos[i]); got != s {
				return fmt.Errorf("core: atom %d binned to %d but SubdomainOf=%d", i, s, got)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("core: atom %d missing from partition", i)
		}
	}
	return nil
}

// String summarizes the decomposition.
func (d *Decomposition) String() string {
	return fmt.Sprintf("sdc{%v, %d×%d×%d subdomains, %d colors, %d/color, reach=%g}",
		d.Dim, d.Counts[0], d.Counts[1], d.Counts[2], d.NumColors(), d.SubdomainsPerColor(), d.Reach)
}
