// Struct-of-arrays position storage. The simulator's public arrays stay
// AoS ([]vec.Vec3 — the integrator, IO and reducer ABI all speak Vec3),
// but the force kernels repack positions into three parallel coordinate
// slices once per evaluation. Combined with the block reorder that makes
// the SDC partition contiguous, every sweep then streams three dense
// float64 arrays per cell block instead of gathering 24-byte structs
// through partindex — the cache-blocking layout of the paper's §II.D and
// of Meyer's cell-task kernels.
package core

import "sdcmd/internal/vec"

// SoA3 holds one float64 slice per Cartesian component.
type SoA3 struct {
	X, Y, Z []float64
}

// Len returns the number of stored vectors.
func (s *SoA3) Len() int { return len(s.X) }

// Resize grows or shrinks the component slices to n elements, reusing
// capacity when possible. Newly exposed elements are not cleared; Pack
// overwrites every element.
func (s *SoA3) Resize(n int) {
	if cap(s.X) < n {
		s.X = make([]float64, n)
		s.Y = make([]float64, n)
		s.Z = make([]float64, n)
		return
	}
	s.X = s.X[:n]
	s.Y = s.Y[:n]
	s.Z = s.Z[:n]
}

// Pack scatters src into the three component slices, resizing first.
func (s *SoA3) Pack(src []vec.Vec3) {
	s.Resize(len(src))
	for i, v := range src {
		s.X[i] = v[0]
		s.Y[i] = v[1]
		s.Z[i] = v[2]
	}
}

// At gathers element i back into a Vec3.
func (s *SoA3) At(i int) vec.Vec3 { return vec.Vec3{s.X[i], s.Y[i], s.Z[i]} }

// Unpack writes the stored vectors into dst, which must have Len()
// elements. It is the inverse of Pack.
func (s *SoA3) Unpack(dst []vec.Vec3) {
	for i := range dst {
		dst[i] = vec.Vec3{s.X[i], s.Y[i], s.Z[i]}
	}
}
