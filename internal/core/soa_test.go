package core

import (
	"math"
	"testing"

	"sdcmd/internal/box"
	"sdcmd/internal/vec"
)

func TestSoA3PackAtUnpack(t *testing.T) {
	src := []vec.Vec3{
		vec.New(1, 2, 3),
		vec.New(-4.5, 0, 7.25),
		vec.New(math.Pi, math.E, -1e-300),
	}
	var s SoA3
	s.Pack(src)
	if s.Len() != len(src) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(src))
	}
	for i, v := range src {
		if s.At(i) != v {
			t.Errorf("At(%d) = %v, want %v", i, s.At(i), v)
		}
	}
	dst := make([]vec.Vec3, len(src))
	s.Unpack(dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Errorf("Unpack[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
}

func TestSoA3ResizeReusesCapacity(t *testing.T) {
	var s SoA3
	s.Pack(make([]vec.Vec3, 64))
	px := &s.X[0]
	s.Pack(make([]vec.Vec3, 32))
	if s.Len() != 32 {
		t.Fatalf("Len = %d after shrink, want 32", s.Len())
	}
	if &s.X[0] != px {
		t.Error("shrink reallocated the X slice")
	}
	s.Resize(128)
	if s.Len() != 128 || len(s.Y) != 128 || len(s.Z) != 128 {
		t.Fatalf("grow left lengths %d/%d/%d, want 128", len(s.X), len(s.Y), len(s.Z))
	}
}

func TestContiguousDetection(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(40))
	pos := randomPositions(400, bx, 7)
	dec, err := Decompose(bx, pos, Dim2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Contiguous() {
		t.Fatal("random positions should not bin to the identity partition")
	}
	// Apply the partition as a reorder: new slot k holds old atom
	// PartIndex[k]. Rebinning the reordered positions must then yield
	// the identity partition.
	reordered := make([]vec.Vec3, len(pos))
	for k, old := range dec.PartIndex {
		reordered[k] = pos[old]
	}
	dec.Rebin(reordered)
	if !dec.Contiguous() {
		t.Fatal("block-reordered positions must be contiguous")
	}
	for k, i := range dec.PartIndex {
		if int(i) != k {
			t.Fatalf("PartIndex[%d] = %d after reorder", k, i)
		}
	}
	if err := dec.Verify(reordered); err != nil {
		t.Fatalf("Verify after reorder: %v", err)
	}
	// Any subsequent motion that changes binning drops the flag.
	dec.Rebin(pos)
	if dec.Contiguous() {
		t.Fatal("scattered positions must clear the contiguous flag")
	}
}

func TestAdjacencyListsMatchAdjacentSubdomains(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.New(50, 37, 29))
	pos := randomPositions(200, bx, 9)
	dec, err := Decompose(bx, pos, Dim3, 3)
	if err != nil {
		t.Fatal(err)
	}
	adj := dec.AdjacencyLists()
	ns := dec.NumSubdomains()
	if len(adj) != ns {
		t.Fatalf("got %d adjacency lists, want %d", len(adj), ns)
	}
	for s := 0; s < ns; s++ {
		in := make(map[int32]bool, len(adj[s]))
		for i, o := range adj[s] {
			if i > 0 && adj[s][i-1] >= o {
				t.Fatalf("adjacency list of %d not strictly ascending: %v", s, adj[s])
			}
			in[o] = true
		}
		for o := 0; o < ns; o++ {
			if dec.AdjacentSubdomains(s, o) != in[int32(o)] {
				t.Fatalf("subdomain %d vs %d: AdjacentSubdomains=%v, list=%v",
					s, o, dec.AdjacentSubdomains(s, o), in[int32(o)])
			}
		}
	}
}
