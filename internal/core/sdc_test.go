package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sdcmd/internal/box"
	"sdcmd/internal/lattice"
	"sdcmd/internal/vec"
)

func randomPositions(n int, bx box.Box, seed int64) []vec.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	l := bx.Lengths()
	ps := make([]vec.Vec3, n)
	for i := range ps {
		ps[i] = bx.Lo.Add(vec.New(rng.Float64()*l[0], rng.Float64()*l[1], rng.Float64()*l[2]))
	}
	return ps
}

func TestDimProperties(t *testing.T) {
	if Dim1.Colors() != 2 || Dim2.Colors() != 4 || Dim3.Colors() != 8 {
		t.Error("color counts wrong")
	}
	if Dim(5).Colors() != 0 || Dim(5).Axes() != nil {
		t.Error("invalid dim must report zero colors, nil axes")
	}
	if Dim1.String() != "1D" || Dim2.String() != "2D" || Dim3.String() != "3D" {
		t.Error("dim strings wrong")
	}
	if Dim(7).String() != "Dim(7)" {
		t.Error("invalid dim string wrong")
	}
	if len(Dim1.Axes()) != 1 || len(Dim2.Axes()) != 2 || len(Dim3.Axes()) != 3 {
		t.Error("axes counts wrong")
	}
}

func TestDecomposeValidation(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(40))
	pos := randomPositions(100, bx, 1)
	if _, err := Decompose(bx, pos, Dim(9), 3); err == nil {
		t.Error("invalid dim accepted")
	}
	if _, err := Decompose(bx, pos, Dim2, 0); err == nil {
		t.Error("zero reach accepted")
	}
	if _, err := Decompose(bx, pos, Dim2, -1); err == nil {
		t.Error("negative reach accepted")
	}
}

func TestDecomposeTooSmall(t *testing.T) {
	// Edge 10, reach 3: floor(10/6) = 1 -> cannot split evenly.
	bx := box.MustNew(vec.Zero, vec.Splat(10))
	pos := randomPositions(50, bx, 2)
	_, err := Decompose(bx, pos, Dim1, 3)
	if !errors.Is(err, ErrTooFewSubdomains) {
		t.Errorf("want ErrTooFewSubdomains, got %v", err)
	}
}

func TestDecomposeCountsEvenAndEdgeBound(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.New(50, 37, 29))
	pos := randomPositions(500, bx, 3)
	for _, d := range []Dim{Dim1, Dim2, Dim3} {
		dec, err := Decompose(bx, pos, d, 3)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		for _, a := range d.Axes() {
			if dec.Counts[a]%2 != 0 || dec.Counts[a] < 2 {
				t.Errorf("%v axis %v count %d", d, a, dec.Counts[a])
			}
		}
		edges := dec.EdgeLengths()
		for _, a := range d.Axes() {
			if edges[a] < 6 {
				t.Errorf("%v axis %v edge %g < 2*reach", d, a, edges[a])
			}
		}
		if err := dec.Verify(pos); err != nil {
			t.Errorf("%v: Verify: %v", d, err)
		}
	}
}

func TestEqualSubdomainsPerColor(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(60))
	pos := randomPositions(300, bx, 4)
	for _, d := range []Dim{Dim1, Dim2, Dim3} {
		dec, err := Decompose(bx, pos, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		per := dec.SubdomainsPerColor()
		for c := 0; c < dec.NumColors(); c++ {
			if len(dec.ByColor[c]) != per {
				t.Errorf("%v color %d: %d subdomains, want %d", d, c, len(dec.ByColor[c]), per)
			}
		}
		if per*dec.NumColors() != dec.NumSubdomains() {
			t.Errorf("%v: per-color %d × colors %d != total %d", d, per, dec.NumColors(), dec.NumSubdomains())
		}
	}
}

func TestNoAdjacentSameColor(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.New(61, 47, 83))
	pos := randomPositions(200, bx, 5)
	for _, d := range []Dim{Dim1, Dim2, Dim3} {
		dec, err := Decompose(bx, pos, d, 3.1)
		if err != nil {
			t.Fatal(err)
		}
		ns := dec.NumSubdomains()
		for s := 0; s < ns; s++ {
			dec.ForNeighborSubdomains(s, func(o int) {
				if o != s && dec.ColorOf[s] == dec.ColorOf[o] {
					t.Fatalf("%v: adjacent subdomains %d,%d share color %d", d, s, o, dec.ColorOf[s])
				}
			})
		}
	}
}

func TestColoringLegalityProperty(t *testing.T) {
	// E5 property test: random box shapes and reaches always yield a
	// legal coloring or a clean ErrTooFewSubdomains.
	f := func(lx, ly, lz, rc uint8) bool {
		l := vec.New(20+float64(lx%200), 20+float64(ly%200), 20+float64(lz%200))
		reach := 2 + float64(rc%8)
		bx := box.MustNew(vec.Zero, l)
		pos := randomPositions(64, bx, int64(lx)+int64(ly)<<8)
		for _, d := range []Dim{Dim1, Dim2, Dim3} {
			dec, err := Decompose(bx, pos, d, reach)
			if err != nil {
				if errors.Is(err, ErrTooFewSubdomains) {
					continue
				}
				return false
			}
			if dec.Verify(pos) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPartitionCoversAllAtoms(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(55))
	pos := randomPositions(1000, bx, 6)
	dec, err := Decompose(bx, pos, Dim2, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < dec.NumSubdomains(); s++ {
		total += dec.AtomCount(s)
	}
	if total != len(pos) {
		t.Errorf("partition holds %d atoms, want %d", total, len(pos))
	}
	if len(dec.PStart) != dec.NumSubdomains()+1 {
		t.Errorf("PStart length %d", len(dec.PStart))
	}
	if int(dec.PStart[dec.NumSubdomains()]) != len(pos) {
		t.Error("PStart[last] must equal atom count")
	}
}

func TestRebinFollowsAtoms(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(48))
	pos := randomPositions(400, bx, 7)
	dec, err := Decompose(bx, pos, Dim3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Move every atom and rebin; Verify must still pass.
	rng := rand.New(rand.NewSource(8))
	for i := range pos {
		pos[i] = bx.Wrap(pos[i].Add(vec.New(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5)))
	}
	dec.Rebin(pos)
	if err := dec.Verify(pos); err != nil {
		t.Fatalf("Verify after rebin: %v", err)
	}
}

func TestSubdomainOfConsistency(t *testing.T) {
	bx := box.MustNew(vec.New(-10, -10, -10), vec.New(38, 38, 38))
	pos := randomPositions(300, bx, 9)
	dec, err := Decompose(bx, pos, Dim2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < dec.NumSubdomains(); s++ {
		if got := dec.Flatten(dec.Unflatten(s)); got != s {
			t.Fatalf("Flatten/Unflatten round trip: %d -> %d", s, got)
		}
	}
	for _, p := range pos {
		s := dec.SubdomainOf(p)
		if s < 0 || s >= dec.NumSubdomains() {
			t.Fatalf("SubdomainOf(%v) = %d out of range", p, s)
		}
	}
}

func TestAdjacency(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(64))
	pos := randomPositions(50, bx, 10)
	dec, err := Decompose(bx, pos, Dim1, 4) // 8 subdomains along x
	if err != nil {
		t.Fatal(err)
	}
	if dec.Counts[0] != 8 {
		t.Fatalf("counts = %v", dec.Counts)
	}
	if !dec.AdjacentSubdomains(0, 1) {
		t.Error("0 and 1 must be adjacent")
	}
	if dec.AdjacentSubdomains(0, 2) {
		t.Error("0 and 2 must not be adjacent")
	}
	if !dec.AdjacentSubdomains(0, 7) {
		t.Error("0 and 7 must be adjacent through the periodic wrap")
	}
	if dec.AdjacentSubdomains(3, 3) {
		t.Error("self adjacency must be false")
	}
	// Open boundary: wrap adjacency disappears.
	bx2 := bx
	bx2.Periodic[0] = false
	dec2, err := Decompose(bx2, pos, Dim1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.AdjacentSubdomains(0, 7) {
		t.Error("0 and 7 adjacent despite open boundary")
	}
}

func TestColorAtomCountsBalance(t *testing.T) {
	// A uniform lattice must distribute atoms almost evenly per color.
	cfg := lattice.MustBuild(lattice.BCC, 10, 10, 10, 2.8665)
	dec, err := Decompose(cfg.Box, cfg.Pos, Dim2, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	counts := dec.ColorAtomCounts()
	mean := float64(cfg.N()) / float64(len(counts))
	for c, n := range counts {
		if float64(n) < 0.8*mean || float64(n) > 1.2*mean {
			t.Errorf("color %d holds %d atoms, mean %g: imbalance", c, n, mean)
		}
	}
}

func TestPaperSubdomainCountsQuote(t *testing.T) {
	// §II.B: "there are 340 subdomains with each color in medium test
	// case, and there are nearly 5000 subdomains with each color in
	// large test case". With our reach (3.5 Å + 0.5 skin = 4.0) the
	// counts differ numerically but the qualitative claim — far more
	// subdomains per color than cores — must hold.
	for _, c := range []lattice.Case{lattice.Medium, lattice.Large3} {
		n := c.CellsPerSide()
		edge := float64(n) * lattice.FeLatticeConstant
		bx := box.MustNew(vec.Zero, vec.Splat(edge))
		dec, err := Decompose(bx, nil, Dim2, 4.0)
		if err != nil {
			t.Fatal(err)
		}
		if dec.SubdomainsPerColor() < 16 {
			t.Errorf("%v: only %d subdomains per color — under core count", c, dec.SubdomainsPerColor())
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(48))
	pos := randomPositions(100, bx, 11)
	mk := func() *Decomposition {
		d, err := Decompose(bx, pos, Dim2, 3)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	d := mk()
	d.ColorOf[0] = d.ColorOf[1] // make neighbors share color
	// Rebuild ByColor consistently so the per-color balance check
	// doesn't fire first.
	if err := d.Verify(pos); err == nil {
		t.Error("same-color adjacency not caught")
	}

	d = mk()
	d.PartIndex = d.PartIndex[:len(d.PartIndex)-1]
	if err := d.Verify(pos); err == nil {
		t.Error("short partition not caught")
	}

	d = mk()
	if len(d.Atoms(d.SubdomainOf(pos[0]))) > 0 {
		// Duplicate an atom: overwrite some other entry with atom 0's id.
		d.PartIndex[len(d.PartIndex)-1] = d.PartIndex[0]
		if err := d.Verify(pos); err == nil {
			t.Error("duplicated atom not caught")
		}
	}

	d = mk()
	d.Counts[0]++ // breaks evenness; Verify checks counts first
	if err := d.Verify(pos); err == nil {
		t.Error("odd count not caught")
	}

	d = mk()
	d.Reach *= 100
	if err := d.Verify(pos); err == nil {
		t.Error("edge < 2*reach not caught")
	}
}

func TestString(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(48))
	dec, err := Decompose(bx, nil, Dim2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dec.String() == "" {
		t.Error("empty String")
	}
}

func TestOneDimRestrictionMatchesTable1Blanks(t *testing.T) {
	// Table 1 leaves 1D SDC blank on the small case at 12/16 threads:
	// the per-color parallelism bound falls below the thread count.
	smallEdge := float64(lattice.Small.CellsPerSide()) * lattice.FeLatticeConstant // 86.0 Å
	bx := box.MustNew(vec.Zero, vec.Splat(smallEdge))
	dec, err := Decompose(bx, nil, Dim1, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	// 86/8 = 10 -> 10 subdomains, 5 per color: enough for 4 threads,
	// not for 12 or 16.
	per := dec.SubdomainsPerColor()
	if per >= 12 {
		t.Errorf("1D small case per-color %d — expected the Table 1 restriction (< 12)", per)
	}
	if per < 2 {
		t.Errorf("1D small case per-color %d — too restrictive", per)
	}
}
