package vet

import (
	"flag"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sdcmd/internal/lattice"
	"sdcmd/internal/lint"
	"sdcmd/internal/neighbor"
	"sdcmd/internal/strategy"
	"sdcmd/internal/vec"
)

var update = flag.Bool("update", false, "rewrite golden files")

func loadFixture(t testing.TB) []*lint.Package {
	t.Helper()
	pkgs, err := lint.Load(filepath.Join("testdata", "src"), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture loaded no packages")
	}
	return pkgs
}

func fixtureFindings(t testing.TB) []lint.Finding {
	t.Helper()
	return lint.RunPasses(loadFixture(t), Passes())
}

// TestGoldenFixture pins every finding — rule, file, line, column and
// message — over the broken fixture module.
func TestGoldenFixture(t *testing.T) {
	var sb strings.Builder
	for _, f := range fixtureFindings(t) {
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	got := sb.String()
	golden := filepath.Join("testdata", "golden", "findings.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from golden (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSafePatternsProve asserts the analyzer proves every confinement
// idiom in safe.go: block indices, tid slots, privatized buffers,
// local scratch, strided indices.
func TestSafePatternsProve(t *testing.T) {
	for _, f := range fixtureFindings(t) {
		if strings.HasSuffix(f.File, "safe.go") {
			t.Errorf("false positive on safe pattern: %s", f)
		}
	}
}

// TestApprovedPathSkipped asserts the strategy fixture's uncolorable
// scatter (good.go writes out[j] too) is exempt via ApprovedPaths.
func TestApprovedPathSkipped(t *testing.T) {
	for _, f := range fixtureFindings(t) {
		if strings.HasPrefix(f.File, "internal/strategy/") {
			t.Errorf("approved path was not skipped: %s", f)
		}
	}
}

// TestHotLoopNegativeControl asserts the unreachable coldAlloc is not
// flagged: hotness comes from the call graph, not from syntax.
func TestHotLoopNegativeControl(t *testing.T) {
	for _, f := range fixtureFindings(t) {
		if f.Rule == "hot-loop" && f.Line >= coldAllocSpan(t)[0] && f.Line <= coldAllocSpan(t)[1] &&
			strings.HasSuffix(f.File, "kernel.go") {
			t.Errorf("unreachable coldAlloc flagged: %s", f)
		}
	}
}

// declSpan returns the [start, end] line range of a named declaration
// in the fixture.
func declSpan(t testing.TB, pkgs []*lint.Package, fileSuffix, name string) [2]int {
	t.Helper()
	for _, p := range pkgs {
		for _, f := range p.Files {
			if !strings.HasSuffix(f.Rel, fileSuffix) {
				continue
			}
			for _, d := range f.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name.Name != name {
					continue
				}
				return [2]int{p.Fset.Position(fd.Pos()).Line, p.Fset.Position(fd.End()).Line}
			}
		}
	}
	t.Fatalf("declaration %s not found in %s", name, fileSuffix)
	return [2]int{}
}

func coldAllocSpan(t testing.TB) [2]int {
	return declSpan(t, loadFixture(t), "kernel.go", "coldAlloc")
}

// uncoloredVetReducer mirrors the seeded-race fixture of the strategy
// package's own tests: SDC's shared-pair write pattern with the
// coloring removed. The mutex keeps the Go race detector quiet — the
// violation is the declared write discipline, which CheckedReducer
// catches dynamically and whose static image is the fixture's
// BrokenReducer.
type uncoloredVetReducer struct {
	list *neighbor.List
	pool *strategy.Pool
	mu   sync.Mutex
}

func (r *uncoloredVetReducer) Kind() strategy.Kind             { return strategy.SDC }
func (r *uncoloredVetReducer) Threads() int                    { return r.pool.Threads() }
func (r *uncoloredVetReducer) PairWork() int                   { return r.list.Pairs() }
func (r *uncoloredVetReducer) WriteShape() strategy.WriteShape { return strategy.WriteSharedPair }

func (r *uncoloredVetReducer) SweepScalar(out []float64, visit strategy.ScalarVisit) {
	r.pool.ParallelFor(r.list.N(), func(start, end, _ int) {
		for i := start; i < end; i++ {
			for _, j := range r.list.Neighbors(i) {
				ci, cj := visit(int32(i), j)
				r.mu.Lock()
				out[i] += ci
				out[j] += cj
				r.mu.Unlock()
			}
		}
	})
}

func (r *uncoloredVetReducer) SweepVector(out []vec.Vec3, visit strategy.VectorVisit) {
	r.pool.ParallelFor(r.list.N(), func(start, end, _ int) {
		for i := start; i < end; i++ {
			for _, j := range r.list.Neighbors(i) {
				f := visit(int32(i), j)
				r.mu.Lock()
				out[i][0] += f[0]
				out[i][1] += f[1]
				out[i][2] += f[2]
				out[j][0] -= f[0]
				out[j][1] -= f[1]
				out[j][2] -= f[2]
				r.mu.Unlock()
			}
		}
	})
}

func (r *uncoloredVetReducer) ParallelForAtoms(body func(start, end, tid int)) {
	r.pool.ParallelFor(r.list.N(), body)
}

// TestStaticSupersetOfDynamic cross-validates the two checkers on the
// same broken reduction pattern: every conflict kind the dynamic
// CheckedReducer observes at runtime must have a static sdc-shared-
// write finding inside the corresponding Broken* sweep of the fixture,
// which re-implements the uncolored reducer statement for statement.
func TestStaticSupersetOfDynamic(t *testing.T) {
	// Dynamic side: run the uncolored reducer under CheckedReducer.
	cfg := lattice.MustBuild(lattice.BCC, 6, 6, 6, 2.8665)
	cfg.Jitter(0.08, 42)
	list, err := neighbor.Builder{Cutoff: 3.5, Skin: 0.5, Half: true}.Build(cfg.Box, cfg.Pos)
	if err != nil {
		t.Fatal(err)
	}
	pool := strategy.MustNewPool(4)
	defer pool.Close()
	chk := strategy.NewCheckedReducer(&uncoloredVetReducer{list: list, pool: pool})
	chk.SweepScalar(make([]float64, list.N()), func(i, j int32) (float64, float64) { return 1, 1 })
	chk.SweepVector(make([]vec.Vec3, list.N()), func(i, j int32) vec.Vec3 { return vec.Vec3{1, 0, 0} })

	dynamicKinds := map[string]bool{}
	for _, c := range chk.Conflicts() {
		dynamicKinds[c.Kind] = true
	}
	if !dynamicKinds["scalar"] || !dynamicKinds["vector"] {
		t.Fatalf("dynamic checker missed a sweep kind: %v", dynamicKinds)
	}

	// Static side: the same pattern in fixture form must yield at least
	// one finding inside each broken sweep.
	pkgs := loadFixture(t)
	findings := lint.RunPasses(pkgs, Passes())
	sweepOf := map[string]string{"scalar": "SweepScalar", "vector": "SweepVector"}
	for kind := range dynamicKinds {
		span := declSpan(t, pkgs, "badstrat/bad.go", sweepOf[kind])
		found := false
		for _, f := range findings {
			if f.Rule == "sdc-shared-write" && strings.HasSuffix(f.File, "badstrat/bad.go") &&
				f.Line >= span[0] && f.Line <= span[1] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("dynamic %s conflict has no static counterpart in %s (static is not a superset)",
				kind, sweepOf[kind])
		}
	}
}
