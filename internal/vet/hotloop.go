package vet

import (
	"fmt"
	"go/ast"
	"go/types"

	"sdcmd/internal/lint"
)

// hotRootNames are the entry points of the per-step kernel work: the
// force computations and the reduction sweeps. Everything reachable
// from them runs once per timestep over every atom or pair.
var hotRootNames = map[string]bool{
	"Compute":     true,
	"SweepScalar": true,
	"SweepVector": true,
}

// markHot flags every function reachable from a kernel root over the
// call graph (including closures folded conservatively into their
// creators), recording which root made it hot.
func (an *analysis) markHot() {
	var queue []*funcNode
	for _, n := range an.all {
		if fd, ok := n.fn.(*ast.FuncDecl); ok && hotRootNames[fd.Name.Name] && !n.hot {
			n.hot = true
			n.hotRoot = fd.Name.Name
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, cs := range n.calls {
			callee := cs.lit
			if callee == nil {
				callee = an.nodes[cs.callee]
			}
			if callee == nil || callee.hot {
				continue
			}
			callee.hot = true
			callee.hotRoot = n.hotRoot
			queue = append(queue, callee)
		}
	}
}

// hotLoopPass flags per-iteration costs inside loops of kernel-hot
// functions: allocations (make, new, growing append, interface
// boxing), defer, and map iteration. None of these appear in the
// paper's per-sweep cost model, and each one silently turns an O(1)
// loop body into an allocating or nondeterministic one.
type hotLoopPass struct {
	sh *shared
}

func (p *hotLoopPass) Name() string { return "hot-loop" }

func (p *hotLoopPass) Doc() string {
	return "no allocation, defer, or map iteration inside loops of functions reachable from Compute or the force sweeps"
}

func (p *hotLoopPass) Analyze(pkgs []*lint.Package) []lint.Finding {
	an := p.sh.analysisFor(pkgs)
	var out []lint.Finding
	for _, n := range an.all {
		if !n.hot || n.body == nil {
			continue
		}
		p.scanHot(an, n, &out)
	}
	return out
}

func (p *hotLoopPass) scanHot(an *analysis, n *funcNode, out *[]lint.Finding) {
	info := n.pkg.Info
	emit := func(pos ast.Node, what string) {
		position := an.position(pos.Pos())
		*out = append(*out, lint.Finding{
			File: an.rel(pos.Pos()), Line: position.Line, Col: position.Column,
			Rule: p.Name(),
			Message: fmt.Sprintf("%s inside a loop of kernel-hot %s (reachable from %s)",
				what, n.display, n.hotRoot),
		})
	}
	var walk func(node ast.Node, depth int)
	walk = func(node ast.Node, depth int) {
		ast.Inspect(node, func(m ast.Node) bool {
			if m == node {
				return true
			}
			switch x := m.(type) {
			case *ast.FuncLit:
				// A nested literal is its own node; it is scanned
				// separately iff the call graph marks it hot.
				return false
			case *ast.ForStmt:
				walk(x, depth+1)
				return false
			case *ast.RangeStmt:
				if depth >= 1 && isMapRange(info, x) {
					emit(x, "map iteration (nondeterministic order)")
				}
				walk(x, depth+1)
				return false
			case *ast.DeferStmt:
				if depth >= 1 {
					emit(x, "defer (allocates and delays release)")
				}
			case *ast.CallExpr:
				if depth < 1 {
					return true
				}
				switch builtinOf(info, x) {
				case "make":
					emit(x, "make allocates")
				case "new":
					emit(x, "new allocates")
				case "append":
					emit(x, "append may grow and reallocate")
				}
				if boxesToInterface(info, x) {
					emit(x, "conversion to interface boxes its operand (allocates)")
				}
			}
			return true
		})
	}
	walk(n.body, 0)
}

// isMapRange reports a range statement iterating a map.
func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// builtinOf mirrors frame.builtinName for contexts without a frame.
func builtinOf(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if info != nil {
		if obj := info.Uses[id]; obj != nil {
			if _, isB := obj.(*types.Builtin); !isB {
				return "" // shadowed
			}
		}
	}
	switch id.Name {
	case "make", "new", "append", "copy", "delete", "len", "cap", "clear":
		return id.Name
	}
	return ""
}

// boxesToInterface reports an explicit conversion whose target type is
// an interface and whose operand is concrete — a per-call allocation.
func boxesToInterface(info *types.Info, call *ast.CallExpr) bool {
	if info == nil || len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || tv.Type == nil {
		return false
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); !isIface {
		return false
	}
	at, ok := info.Types[call.Args[0]]
	if !ok || at.Type == nil {
		return false
	}
	_, argIface := at.Type.Underlying().(*types.Interface)
	return !argIface
}
