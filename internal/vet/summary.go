package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"sdcmd/internal/lint"
)

// originKind classifies where a written base or index value comes from,
// relative to the function whose summary holds it.
type originKind int

const (
	// oUnknown: the analysis cannot name the value (call result,
	// arithmetic, interface load). Writes rooted here are skipped —
	// the documented under-approximation.
	oUnknown originKind = iota
	// oLocal: allocated inside the function (make/new/composite
	// literal) or a plain local variable. Never shared across workers.
	oLocal
	// oParam: the i-th parameter (receiver first for methods).
	oParam
	// oCaptured: a variable of an enclosing function, shared by every
	// worker running the closure.
	oCaptured
	// oGlobal: a package-level variable.
	oGlobal
	// oField: base.field.
	oField
	// oElem: base[index] — one element selected by index.
	oElem
	// oWindow: base[off:] or an append/copy region — a window at a
	// statically unknown offset. Unlike oElem, a confined index deeper
	// in the chain cannot prove disjointness across workers.
	oWindow
	// oLoop: a for-loop variable ranging over [lo, hi).
	oLoop
)

// origin is one node of the tree naming a value's source.
type origin struct {
	kind   originKind
	param  int
	vr     *types.Var
	field  string
	base   *origin
	index  *origin
	lo, hi *origin
}

var unknownOrigin = &origin{kind: oUnknown}

// render gives origins a stable, human-readable spelling; it doubles as
// the dedup key for effects.
func render(o *origin) string {
	if o == nil {
		return "?"
	}
	switch o.kind {
	case oLocal:
		if o.vr != nil {
			return o.vr.Name()
		}
		return "<local>"
	case oParam:
		return fmt.Sprintf("param%d", o.param)
	case oCaptured, oGlobal:
		if o.vr != nil {
			return o.vr.Name()
		}
		return "<var>"
	case oField:
		return render(o.base) + "." + o.field
	case oElem:
		return render(o.base) + "[" + render(o.index) + "]"
	case oWindow:
		return render(o.base) + "[...]"
	case oLoop:
		return render(o.lo) + ".." + render(o.hi)
	}
	return "?"
}

// rootOf walks to the container at the bottom of a field/index chain.
func rootOf(o *origin) *origin {
	for o != nil {
		switch o.kind {
		case oField, oElem, oWindow:
			o = o.base
		default:
			return o
		}
	}
	return unknownOrigin
}

// effect is one potential write in a function summary: target is the
// written location in terms of the function's own params, captured
// variables and globals; pos is the syntactic write (preserved through
// interprocedural substitution so findings point at the real line).
type effect struct {
	target *origin
	pos    token.Pos
	via    string
}

func effectKey(e effect) string {
	return fmt.Sprintf("%d:%s", e.pos, render(e.target))
}

// callSite is one outgoing call edge. Exactly one of callee/lit is set.
// args holds the caller-frame origins of the arguments (receiver first
// for methods); nil args means a conservative fold — the callee's
// parameters substitute to unknown.
type callSite struct {
	callee string
	lit    *funcNode
	args   []*origin
	pos    token.Pos
}

// funcNode is one function or function literal in the program.
type funcNode struct {
	name    string // types.Func FullName for declarations
	display string // short name for messages
	pkg     *lint.Package
	file    *lint.SourceFile
	fn      ast.Node // *ast.FuncDecl or *ast.FuncLit
	body    *ast.BlockStmt
	params  []*types.Var // receiver first; nil entries for unnamed/_

	effects []effect
	keys    map[string]bool
	calls   []callSite
	env     map[*types.Var]*origin

	hot     bool
	hotRoot string
}

func (n *funcNode) addEffect(e effect) bool {
	if len(n.effects) >= maxEffects {
		return false
	}
	k := effectKey(e)
	if n.keys[k] {
		return false
	}
	n.keys[k] = true
	n.effects = append(n.effects, e)
	return true
}

const (
	maxEffects     = 300
	maxRounds      = 25
	maxOriginDepth = 10
)

// dispatchSite is one worker-body submission to a Pool-style method.
type dispatchSite struct {
	method string
	body   *funcNode
	file   *lint.SourceFile
	pos    token.Pos
}

// analysis is the whole-program result both passes consume.
type analysis struct {
	pkgs     []*lint.Package
	fset     *token.FileSet
	nodes    map[string]*funcNode
	all      []*funcNode
	relOf    map[string]string
	dispatch []dispatchSite
}

// rel maps a token position back to a root-relative file path.
func (an *analysis) rel(pos token.Pos) string {
	p := an.fset.Position(pos)
	if r, ok := an.relOf[p.Filename]; ok {
		return r
	}
	return p.Filename
}

func (an *analysis) position(pos token.Pos) token.Position {
	return an.fset.Position(pos)
}

// analyze builds per-function write-set summaries for every non-test
// function in pkgs and propagates them to a fixpoint.
func analyze(pkgs []*lint.Package) *analysis {
	an := &analysis{
		pkgs:  pkgs,
		nodes: map[string]*funcNode{},
		relOf: map[string]string{},
	}
	if len(pkgs) > 0 {
		an.fset = pkgs[0].Fset
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			an.relOf[f.Path] = f.Rel
		}
	}
	// Create nodes for every declared function first so call sites in
	// one package can link to summaries in another by FullName.
	type declWork struct {
		node *funcNode
	}
	var work []declWork
	for _, p := range pkgs {
		for _, f := range p.Files {
			if f.Test {
				continue // test files carry no type info (see lint.Load)
			}
			for _, d := range f.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				n := &funcNode{
					display: fd.Name.Name,
					pkg:     p,
					file:    f,
					fn:      fd,
					body:    fd.Body,
					keys:    map[string]bool{},
					env:     map[*types.Var]*origin{},
				}
				n.name = declName(p, fd)
				n.params = declParams(p, fd)
				an.all = append(an.all, n)
				if n.name != "" {
					an.nodes[n.name] = n
				}
				work = append(work, declWork{n})
			}
		}
	}
	for _, w := range work {
		fr := &frame{an: an, node: w.node, lits: map[*types.Var]*funcNode{}}
		fr.block(w.node.body)
	}
	an.fixpoint()
	an.markHot()
	return an
}

// declName returns the cross-package identity of a declared function:
// the types.Func FullName, which importer-loaded and source-loaded
// instances agree on even when the object pointers differ.
func declName(p *lint.Package, fd *ast.FuncDecl) string {
	if p.Info == nil {
		return ""
	}
	if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok && fn != nil {
		return fn.FullName()
	}
	return ""
}

// declParams lists a declaration's parameter variables, receiver first,
// with nil placeholders for unnamed parameters so indices stay aligned
// with call-site argument lists.
func declParams(p *lint.Package, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	addField := func(fl *ast.Field) {
		if len(fl.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, nm := range fl.Names {
			if v, ok := p.Info.Defs[nm].(*types.Var); ok {
				out = append(out, v)
			} else {
				out = append(out, nil)
			}
		}
	}
	if fd.Recv != nil {
		for _, fl := range fd.Recv.List {
			addField(fl)
		}
	}
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			addField(fl)
		}
	}
	return out
}

// litParams lists a literal's parameter variables.
func litParams(p *lint.Package, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	if lit.Type.Params == nil {
		return out
	}
	for _, fl := range lit.Type.Params.List {
		if len(fl.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, nm := range fl.Names {
			if v, ok := p.Info.Defs[nm].(*types.Var); ok {
				out = append(out, v)
			} else {
				out = append(out, nil)
			}
		}
	}
	return out
}

// fixpoint propagates callee effects into callers until nothing grows:
// each round substitutes argument origins for parameters, resolves
// captured variables against the calling frame, and keeps only effects
// still rooted in something potentially shared.
func (an *analysis) fixpoint() {
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, n := range an.all {
			for _, cs := range n.calls {
				callee := cs.lit
				if callee == nil {
					callee = an.nodes[cs.callee]
				}
				if callee == nil || callee == n {
					continue
				}
				for _, ef := range callee.effects {
					t := substOrigin(ef.target, cs, n, 0)
					switch rootOf(t).kind {
					case oLocal, oUnknown:
						continue
					}
					via := ef.via
					if via == "" {
						via = callee.display
					}
					if n.addEffect(effect{target: t, pos: ef.pos, via: via}) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// substOrigin rewrites a callee-frame origin into the caller's frame at
// one call site: parameters become argument origins, captured variables
// resolve against the caller, and everything else passes through.
func substOrigin(o *origin, cs callSite, caller *funcNode, depth int) *origin {
	if o == nil || depth > maxOriginDepth {
		return unknownOrigin
	}
	switch o.kind {
	case oParam:
		if cs.args != nil && o.param >= 0 && o.param < len(cs.args) && cs.args[o.param] != nil {
			return cs.args[o.param]
		}
		return unknownOrigin
	case oCaptured:
		return resolveCaptured(o.vr, caller)
	case oField:
		return &origin{kind: oField, field: o.field, base: substOrigin(o.base, cs, caller, depth+1)}
	case oElem:
		return &origin{kind: oElem,
			base:  substOrigin(o.base, cs, caller, depth+1),
			index: substOrigin(o.index, cs, caller, depth+1)}
	case oWindow:
		return &origin{kind: oWindow, base: substOrigin(o.base, cs, caller, depth+1)}
	case oLoop:
		return &origin{kind: oLoop,
			lo: substOrigin(o.lo, cs, caller, depth+1),
			hi: substOrigin(o.hi, cs, caller, depth+1)}
	}
	return o
}

// resolveCaptured re-homes a captured variable relative to fn: it may
// be one of fn's parameters, a local with a known alias, a local plain
// and simple, or captured from further out still.
func resolveCaptured(vr *types.Var, fn *funcNode) *origin {
	if vr == nil {
		return unknownOrigin
	}
	for i, p := range fn.params {
		if p == vr {
			return &origin{kind: oParam, param: i}
		}
	}
	if e, ok := fn.env[vr]; ok {
		return e
	}
	if fn.fn != nil && vr.Pos() >= fn.fn.Pos() && vr.Pos() < fn.fn.End() {
		return &origin{kind: oLocal, vr: vr}
	}
	return &origin{kind: oCaptured, vr: vr}
}

// frame is the per-function walk state.
type frame struct {
	an     *analysis
	node   *funcNode
	parent *frame
	lits   map[*types.Var]*funcNode
}

func (fr *frame) info() *types.Info { return fr.node.pkg.Info }

// lookupVar classifies an identifier's variable in this frame.
func (fr *frame) lookupVar(vr *types.Var) *origin {
	if vr == nil {
		return unknownOrigin
	}
	if o, ok := fr.node.env[vr]; ok {
		return o
	}
	for i, p := range fr.node.params {
		if p == vr {
			return &origin{kind: oParam, param: i}
		}
	}
	if vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
		return &origin{kind: oGlobal, vr: vr}
	}
	if fr.node.fn != nil && vr.Pos() >= fr.node.fn.Pos() && vr.Pos() < fr.node.fn.End() {
		return &origin{kind: oLocal, vr: vr}
	}
	return &origin{kind: oCaptured, vr: vr}
}

// litFor finds the literal bound to a local variable, searching
// enclosing frames so a worker body can call a closure its parent
// defined.
func (fr *frame) litFor(vr *types.Var) *funcNode {
	for f := fr; f != nil; f = f.parent {
		if n, ok := f.lits[vr]; ok {
			return n
		}
	}
	return nil
}

// isLocalHere reports whether vr belongs to this frame's function
// (param or local), as opposed to being captured or global.
func (fr *frame) isLocalHere(vr *types.Var) bool {
	if vr == nil {
		return false
	}
	for _, p := range fr.node.params {
		if p == vr {
			return true
		}
	}
	if vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
		return false
	}
	return fr.node.fn != nil && vr.Pos() >= fr.node.fn.Pos() && vr.Pos() < fr.node.fn.End()
}

// varOf resolves an identifier to its variable, or nil.
func (fr *frame) varOf(id *ast.Ident) *types.Var {
	info := fr.info()
	if info == nil {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// typeOf returns the static type of e, or nil when unknown.
func (fr *frame) typeOf(e ast.Expr) types.Type {
	info := fr.info()
	if info == nil {
		return nil
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isConversion reports whether call is a type conversion.
func (fr *frame) isConversion(call *ast.CallExpr) bool {
	info := fr.info()
	if info == nil {
		return false
	}
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the builtin a call invokes ("" when not one).
func (fr *frame) builtinName(call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	info := fr.info()
	if info != nil {
		if obj := info.Uses[id]; obj != nil {
			if _, isB := obj.(*types.Builtin); !isB {
				return "" // shadowed
			}
		}
	}
	switch id.Name {
	case "make", "new", "append", "copy", "delete", "len", "cap", "clear":
		return id.Name
	}
	return ""
}
