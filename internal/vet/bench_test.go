package vet

import (
	"testing"

	"sdcmd/internal/lint"
)

// repoRoot is the real module root, two levels up from this package.
const repoRoot = "../.."

// BenchmarkAnalyzeRepo measures the full-repo write-set analysis —
// load+type-check once (amortized setup), then the summary/fixpoint
// cost per iteration, which is what every sdcvet invocation pays on
// top of the shared driver load.
func BenchmarkAnalyzeRepo(b *testing.B) {
	pkgs, err := lint.Load(repoRoot, []string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := analyze(pkgs)
		if len(an.all) == 0 {
			b.Fatal("analysis saw no functions")
		}
	}
}

// BenchmarkLoadAndAnalyzeRepo measures the end-to-end cost of one
// sdcvet run: parse + type-check + analysis.
func BenchmarkLoadAndAnalyzeRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := lint.Load(repoRoot, []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		analyze(pkgs)
	}
}

// TestRepoParsedOnce pins the shared-driver contract on the real tree:
// however many packages import a file's package, the loader parses the
// file exactly once per run.
func TestRepoParsedOnce(t *testing.T) {
	seen := map[string]int{}
	pkgs, err := lint.LoadWithHook(repoRoot, []string{"./..."}, func(path string) { seen[path]++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	if len(seen) == 0 {
		t.Fatal("parse hook never fired")
	}
	for path, n := range seen {
		if n != 1 {
			t.Errorf("%s parsed %d times, want exactly once", path, n)
		}
	}
}
