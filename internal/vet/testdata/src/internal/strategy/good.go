package strategy

// SDCish mirrors a real reducer: the scatter to out[j] is only safe
// through the coloring argument, which the analyzer cannot see. The
// file lives under the approved path, so sdcvet must skip it.
type SDCish struct {
	Pool  *Pool
	Neigh [][]int32
}

// SweepScalar accumulates pair terms into out without worker-local
// confinement — licensed here, and only here, by the SDC schedule.
func (r *SDCish) SweepScalar(out []float64, visit func(i, j int32) (float64, float64)) {
	r.Pool.ParallelForStrided(len(r.Neigh), func(k, tid int) {
		for _, j := range r.Neigh[k] {
			ci, cj := visit(int32(k), j)
			out[k] += ci
			out[j] += cj
		}
	})
}
