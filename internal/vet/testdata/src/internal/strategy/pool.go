// Package strategy is a minimal stand-in for the repo's worker pool:
// the dispatch method set and worker-body parameter conventions match
// the real one, execution is serial.
package strategy

// Pool fans work out to a fixed set of workers.
type Pool struct{ threads int }

// NewPool returns a pool with at least one worker.
func NewPool(threads int) *Pool {
	if threads < 1 {
		threads = 1
	}
	return &Pool{threads: threads}
}

// Threads reports the worker count.
func (p *Pool) Threads() int { return p.threads }

// Run hands each worker its id.
func (p *Pool) Run(fn func(tid int)) { fn(0) }

// ParallelFor gives each worker one contiguous [start, end) block.
func (p *Pool) ParallelFor(n int, body func(start, end, tid int)) { body(0, n, 0) }

// ParallelForAtoms is ParallelFor with atom-count-aware splitting.
func (p *Pool) ParallelForAtoms(n int, body func(start, end, tid int)) { body(0, n, 0) }

// ParallelForStrided hands out single indices round-robin.
func (p *Pool) ParallelForStrided(n int, body func(k, tid int)) {
	for k := 0; k < n; k++ {
		body(k, 0)
	}
}

// ParallelForDynamic hands out single indices from a shared counter.
func (p *Pool) ParallelForDynamic(n int, body func(k, tid int)) {
	for k := 0; k < n; k++ {
		body(k, 0)
	}
}
