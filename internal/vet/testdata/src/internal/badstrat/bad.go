// Package badstrat re-implements the SDC pair reduction outside the
// approved strategy package and without the coloring: its scatters to
// out[j] race between workers, and sdcvet must flag every one.
package badstrat

import "fixture/internal/strategy"

// BrokenReducer is the uncolored reducer the dynamic CheckedReducer
// catches at runtime; the static analyzer must catch it here.
type BrokenReducer struct {
	Pool  *strategy.Pool
	Neigh [][]int32
}

// SweepScalar writes out[i] (block-confined, fine) and out[j]
// (neighbor-indexed, a race).
func (r *BrokenReducer) SweepScalar(out []float64, visit func(i, j int32) (float64, float64)) {
	r.Pool.ParallelFor(len(r.Neigh), func(start, end, tid int) {
		for i := start; i < end; i++ {
			for _, j := range r.Neigh[i] {
				ci, cj := visit(int32(i), j)
				out[i] += ci
				out[j] += cj
			}
		}
	})
}

// SweepVector does the same over [3]float64 slots; the analyzer must
// peel the value-array index and flag each out[j] component line.
func (r *BrokenReducer) SweepVector(out [][3]float64, visit func(i, j int32) ([3]float64, [3]float64)) {
	r.Pool.ParallelFor(len(r.Neigh), func(start, end, tid int) {
		for i := start; i < end; i++ {
			for _, j := range r.Neigh[i] {
				ci, cj := visit(int32(i), j)
				out[i][0] += ci[0]
				out[i][1] += ci[1]
				out[i][2] += ci[2]
				out[j][0] += cj[0]
				out[j][1] += cj[1]
				out[j][2] += cj[2]
			}
		}
	})
}
