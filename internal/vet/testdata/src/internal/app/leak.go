// Package app holds worker-body fixtures outside any approved path.
package app

import "fixture/internal/strategy"

// Pair is one interacting (i, j) couple.
type Pair struct{ I, J int32 }

// addForce scatters one pair's contribution into the shared force
// array; neither index derives from the worker identity, so reaching
// this helper from a worker body races. The findings must land on the
// two write lines below, not at the call site.
func addForce(force [][3]float64, i, j int32) {
	force[i][0] += 1
	force[j][0] -= 1
}

// AccumulateForces fans pairs out across workers but lets addForce
// write force[] by pair endpoints — the interprocedural leak case.
func AccumulateForces(pool *strategy.Pool, force [][3]float64, pairs []Pair) {
	pool.ParallelForStrided(len(pairs), func(k, tid int) {
		pr := pairs[k]
		addForce(force, pr.I, pr.J)
	})
}
