package app

import "fixture/internal/strategy"

// SafePatterns exercises every confinement idiom the analyzer must
// prove: block-indexed writes, tid slots, privatized per-thread
// buffers, worker-local allocation, and strided indices. It must
// produce zero findings.
func SafePatterns(pool *strategy.Pool, acc []float64, hist []int, priv [][]float64) {
	pool.ParallelFor(len(acc), func(start, end, tid int) {
		for i := start; i < end; i++ {
			acc[i] += 1
		}
		hist[tid]++
		p := priv[tid]
		for k := range p {
			p[k] = 0
		}
		scratch := make([]float64, 8)
		for i := range scratch {
			scratch[i] = 1
		}
		_ = scratch
	})
	pool.ParallelForStrided(len(acc), func(k, tid int) {
		acc[k] += float64(tid)
	})
	pool.Run(func(tid int) {
		hist[tid] = 0
	})
}
