package app

import "fixture/internal/strategy"

// ScatterDensity pins the precision split inside one closure: the same
// function writes rho twice, once through the worker's own block index
// (provably confined at the call site) and once through a neighbor
// index (racy). Exactly the second write may be flagged.
func ScatterDensity(pool *strategy.Pool, rho []float64, neigh [][]int32) {
	deposit := func(i, j int32) {
		rho[i] += 1
		rho[j] += 1
	}
	pool.ParallelFor(len(neigh), func(start, end, tid int) {
		for i := start; i < end; i++ {
			for _, j := range neigh[i] {
				deposit(int32(i), j)
			}
		}
	})
}
