// Package force holds the hot-loop hazard fixtures: Compute and
// SweepVector are kernel roots by name, helperHot is hot only by
// reachability, and coldAlloc is the unreachable negative control.
package force

// Boxer is the interface a kernel value gets boxed into.
type Boxer interface{ Box() }

// Item is a concrete kernel element.
type Item struct{ V float64 }

// Box implements Boxer.
func (Item) Box() {}

// Table is an EAM-style interpolation table with an allocation-happy
// Compute that pins one finding per hazard line.
type Table struct {
	Coeff map[int]float64
	Items []Item
}

func release([]float64) {}

// Compute allocates, grows, defers and walks a map inside its atom
// loop — four distinct hot-loop findings.
func (t *Table) Compute(out []float64) {
	for i := range out {
		buf := make([]float64, 4)
		buf = append(buf, float64(i))
		defer release(buf)
		for k, c := range t.Coeff {
			out[i] += c * float64(k)
		}
	}
	helperHot(out)
}

// helperHot is hot only because Compute calls it.
func helperHot(out []float64) {
	for i := range out {
		tmp := make([]float64, 1)
		out[i] += tmp[0]
	}
}

// SweepVector boxes a concrete element into an interface per
// iteration — one finding.
func (t *Table) SweepVector(out [][3]float64) {
	for i := range t.Items {
		b := Boxer(t.Items[i])
		_ = b
		out[i][0] += 1
	}
}

// coldAlloc is unreachable from any kernel root; its in-loop append
// must not be flagged.
func coldAlloc(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
