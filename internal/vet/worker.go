package vet

import (
	"fmt"

	"sdcmd/internal/lint"
)

// workerWritePass checks the SDC write discipline: every write a
// Pool worker body can reach must be provably confined to the worker
// (indexed by tid, by the strided k, or by the worker's [start, end)
// block) unless the dispatch site lives in an approved reducer file.
type workerWritePass struct {
	sh *shared
}

func (p *workerWritePass) Name() string { return "sdc-shared-write" }

func (p *workerWritePass) Doc() string {
	return "worker bodies must not write shared arrays outside approved reducers unless the index is provably thread- or block-confined"
}

// convention describes which worker-body parameters confine an index
// for one Pool dispatch method. loopLo/loopHi name the parameters of a
// worker's private [start, end) block, or -1 when the method has none.
type convention struct {
	confined       map[int]bool
	loopLo, loopHi int
}

// conventionFor returns the confinement contract of a dispatch method:
//
//	Run(fn(tid))                          — tid is param 0
//	ParallelFor/ParallelForAtoms(body(start, end, tid))
//	                                      — tid is param 2, block is [p0, p1)
//	ParallelForStrided/ParallelForDynamic(body(k, tid))
//	                                      — both k and tid confine
func conventionFor(method string) convention {
	switch method {
	case "Run":
		return convention{confined: map[int]bool{0: true}, loopLo: -1, loopHi: -1}
	case "ParallelFor", "ParallelForAtoms":
		return convention{confined: map[int]bool{2: true}, loopLo: 0, loopHi: 1}
	case "ParallelForStrided", "ParallelForDynamic":
		return convention{confined: map[int]bool{0: true, 1: true}, loopLo: -1, loopHi: -1}
	}
	return convention{confined: map[int]bool{}, loopLo: -1, loopHi: -1}
}

// confinedIndex reports whether an index value is private to one
// worker under the convention: a confined parameter directly, or a
// loop variable ranging exactly over the worker's block parameters.
func confinedIndex(o *origin, conv convention) bool {
	if o == nil {
		return false
	}
	switch o.kind {
	case oParam:
		return conv.confined[o.param]
	case oLoop:
		if conv.loopLo < 0 {
			return false
		}
		return o.lo != nil && o.lo.kind == oParam && o.lo.param == conv.loopLo &&
			o.hi != nil && o.hi.kind == oParam && o.hi.param == conv.loopHi
	}
	return false
}

// confinedWrite applies the chain rule to a write target: scanning the
// origin chain from the shared root outward, the write is confined as
// soon as an element step uses a confined index — unless a window
// (slice-at-unknown-offset) appears first, which breaks the proof:
// distinct confined indices into overlapping windows may alias.
func confinedWrite(t *origin, conv convention) bool {
	var chain []*origin
	for o := t; o != nil; o = o.base {
		chain = append(chain, o)
		if o.kind != oField && o.kind != oElem && o.kind != oWindow {
			break
		}
	}
	window := false
	for i := len(chain) - 1; i >= 0; i-- {
		switch chain[i].kind {
		case oWindow:
			window = true
		case oElem:
			if !window && confinedIndex(chain[i].index, conv) {
				return true
			}
		}
	}
	return false
}

func (p *workerWritePass) Analyze(pkgs []*lint.Package) []lint.Finding {
	an := p.sh.analysisFor(pkgs)
	var out []lint.Finding
	seen := map[string]bool{}
	for _, d := range an.dispatch {
		if lint.PathAllowed(d.file.Rel, ApprovedPaths) {
			continue // approved reducer entry point
		}
		conv := conventionFor(d.method)
		for _, ef := range d.body.effects {
			if confinedWrite(ef.target, conv) {
				continue
			}
			file := an.rel(ef.pos)
			if lint.PathAllowed(file, ApprovedPaths) {
				continue // the write itself lives in approved reducer code
			}
			pos := an.position(ef.pos)
			key := fmt.Sprintf("%s:%d:%d:%s", file, pos.Line, pos.Column, render(ef.target))
			if seen[key] {
				continue
			}
			seen[key] = true
			msg := fmt.Sprintf(
				"worker body passed to %s writes shared memory %s without provable confinement; index by tid or the worker's block, or route the reduction through an approved strategy.Reducer",
				d.method, render(ef.target))
			if ef.via != "" {
				msg += fmt.Sprintf(" (write reached via %s)", ef.via)
			}
			out = append(out, lint.Finding{
				File: file, Line: pos.Line, Col: pos.Column,
				Rule: p.Name(), Message: msg,
			})
		}
	}
	return out
}
