package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The intraprocedural walk: one pass over a function body that builds
// the alias environment (what each local names), records write effects,
// links call sites, and hatches nested function literals as their own
// nodes. It is flow-insensitive — the last recorded alias for a local
// wins — which is the precision level the repo's kernel code needs and
// the caveats in the package comment document.

// originOf names the value of an expression in this frame.
func (fr *frame) originOf(e ast.Expr) *origin {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return unknownOrigin
		}
		return fr.lookupVar(fr.varOf(x))
	case *ast.SelectorExpr:
		// pkg.Var reaches a global directly.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if info := fr.info(); info != nil {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := info.Uses[x.Sel].(*types.Var); ok {
						return &origin{kind: oGlobal, vr: v}
					}
					return unknownOrigin
				}
			}
		}
		if fr.varOf(x.Sel) == nil {
			return unknownOrigin // method value or unresolved
		}
		return &origin{kind: oField, field: x.Sel.Name, base: fr.originOf(x.X)}
	case *ast.IndexExpr:
		return &origin{kind: oElem, base: fr.originOf(x.X), index: fr.originOf(x.Index)}
	case *ast.SliceExpr:
		if x.Low == nil {
			return fr.originOf(x.X) // x[:n] aliases x exactly
		}
		return &origin{kind: oWindow, base: fr.originOf(x.X)}
	case *ast.StarExpr:
		return fr.originOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return fr.originOf(x.X)
		}
		return unknownOrigin
	case *ast.CompositeLit:
		return &origin{kind: oLocal}
	case *ast.CallExpr:
		if fr.isConversion(x) && len(x.Args) == 1 {
			return fr.originOf(x.Args[0])
		}
		switch fr.builtinName(x) {
		case "make", "new":
			return &origin{kind: oLocal}
		case "append":
			if len(x.Args) > 0 {
				return fr.originOf(x.Args[0]) // grown slice still aliases arg0's array
			}
		}
		return unknownOrigin
	}
	return unknownOrigin
}

// writeTarget names the location an assignment's left side stores into.
// Indexing into a value array (out[i][0] where out[i] is a [3]float64)
// peels to the slice level: the write lands in out's element i.
func (fr *frame) writeTarget(e ast.Expr) *origin {
	switch x := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		if t := fr.typeOf(x.X); t != nil {
			if _, isArr := t.Underlying().(*types.Array); isArr {
				return fr.writeTarget(x.X)
			}
		}
		return &origin{kind: oElem, base: fr.originOf(x.X), index: fr.originOf(x.Index)}
	case *ast.SliceExpr, *ast.SelectorExpr, *ast.StarExpr, *ast.Ident:
		return fr.originOf(e)
	}
	return unknownOrigin
}

// recordWrite notes a write to a potentially shared location. Writes
// rooted in locals or unknowns are dropped (private, or the documented
// under-approximation).
func (fr *frame) recordWrite(target *origin, pos token.Pos) {
	switch rootOf(target).kind {
	case oParam, oCaptured, oGlobal:
		fr.node.addEffect(effect{target: target, pos: pos})
	}
}

// hatchLit turns a function literal into its own node and walks it.
func (fr *frame) hatchLit(lit *ast.FuncLit) *funcNode {
	n := &funcNode{
		display: fr.node.display,
		pkg:     fr.node.pkg,
		file:    fr.node.file,
		fn:      lit,
		body:    lit.Body,
		params:  litParams(fr.node.pkg, lit),
		keys:    map[string]bool{},
		env:     map[*types.Var]*origin{},
	}
	fr.an.all = append(fr.an.all, n)
	child := &frame{an: fr.an, node: n, parent: fr, lits: map[*types.Var]*funcNode{}}
	child.block(lit.Body)
	return n
}

// dispatchMethods are the Pool entry points whose last argument is a
// worker body; the parameter conventions live in worker.go.
var dispatchMethods = map[string]bool{
	"Run":                true,
	"ParallelFor":        true,
	"ParallelForStrided": true,
	"ParallelForDynamic": true,
	"ParallelForAtoms":   true,
}

// poolPackage reports whether a package path hosts worker-dispatch
// types (strategy.Pool / strategy.Reducer / neighbor.Parallelizer).
func poolPackage(path string) bool {
	return path == "internal/strategy" || strings.HasSuffix(path, "/internal/strategy") ||
		path == "internal/neighbor" || strings.HasSuffix(path, "/internal/neighbor")
}

// call processes one call expression: resolves the callee, records the
// call edge with caller-frame argument origins, folds literal arguments
// (whoever receives a closure may run it), models the writing builtins,
// and registers worker-dispatch sites.
func (fr *frame) call(x *ast.CallExpr) {
	// Builtins that write through their first argument.
	switch fr.builtinName(x) {
	case "append":
		if len(x.Args) > 0 {
			fr.recordWrite(&origin{kind: oWindow, base: fr.originOf(x.Args[0])}, x.Pos())
		}
		for _, a := range x.Args {
			fr.expr(a)
		}
		return
	case "copy":
		if len(x.Args) == 2 {
			dst := fr.originOf(x.Args[0])
			if dst.kind != oWindow {
				dst = &origin{kind: oWindow, base: dst}
			}
			fr.recordWrite(dst, x.Pos())
		}
		for _, a := range x.Args {
			fr.expr(a)
		}
		return
	case "delete":
		if len(x.Args) == 2 {
			fr.recordWrite(&origin{kind: oElem,
				base: fr.originOf(x.Args[0]), index: fr.originOf(x.Args[1])}, x.Pos())
		}
		for _, a := range x.Args {
			fr.expr(a)
		}
		return
	case "make", "new", "len", "cap", "clear":
		for _, a := range x.Args {
			fr.expr(a)
		}
		return
	}
	if fr.isConversion(x) {
		for _, a := range x.Args {
			fr.expr(a)
		}
		return
	}

	// Argument origins are snapshotted now, against the current env.
	argOrigins := func(recv ast.Expr) []*origin {
		var out []*origin
		if recv != nil {
			out = append(out, fr.originOf(recv))
		}
		for _, a := range x.Args {
			if _, isLit := a.(*ast.FuncLit); isLit {
				out = append(out, unknownOrigin)
			} else {
				out = append(out, fr.originOf(a))
			}
		}
		return out
	}

	info := fr.info()
	var litNodes []*funcNode
	for _, a := range x.Args {
		if lit, ok := a.(*ast.FuncLit); ok {
			n := fr.hatchLit(lit)
			litNodes = append(litNodes, n)
			// Conservative fold: assume the callee runs the closure.
			fr.node.calls = append(fr.node.calls, callSite{lit: n, pos: x.Pos()})
			continue
		}
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			if vr := fr.varOf(id); vr != nil {
				if n := fr.litFor(vr); n != nil {
					// A bound closure escaping by name: fold it too.
					fr.node.calls = append(fr.node.calls, callSite{lit: n, pos: x.Pos()})
				}
			}
		}
		fr.expr(a)
	}

	switch fun := ast.Unparen(x.Fun).(type) {
	case *ast.FuncLit:
		n := fr.hatchLit(fun)
		fr.node.calls = append(fr.node.calls, callSite{lit: n, args: argOrigins(nil), pos: x.Pos()})
		return
	case *ast.Ident:
		if info != nil {
			if fn, ok := info.Uses[fun].(*types.Func); ok && fn != nil {
				fr.node.calls = append(fr.node.calls,
					callSite{callee: fn.FullName(), args: argOrigins(nil), pos: x.Pos()})
				return
			}
		}
		if vr := fr.varOf(fun); vr != nil {
			if n := fr.litFor(vr); n != nil {
				fr.node.calls = append(fr.node.calls,
					callSite{lit: n, args: argOrigins(nil), pos: x.Pos()})
				return
			}
		}
		return // func-typed value we cannot resolve: assumed non-writing
	case *ast.SelectorExpr:
		fr.expr(fun.X)
		if info == nil {
			return
		}
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn == nil {
			return
		}
		recv := ast.Expr(fun.X)
		if id, isID := ast.Unparen(fun.X).(*ast.Ident); isID {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				recv = nil // package-qualified function, no receiver slot
			}
		}
		fr.node.calls = append(fr.node.calls,
			callSite{callee: fn.FullName(), args: argOrigins(recv), pos: x.Pos()})
		// Worker dispatch: Pool-family method, literal body last.
		if recv != nil && dispatchMethods[fun.Sel.Name] && fn.Pkg() != nil &&
			poolPackage(fn.Pkg().Path()) && len(litNodes) > 0 && len(x.Args) > 0 {
			if lit, isLit := x.Args[len(x.Args)-1].(*ast.FuncLit); isLit {
				body := litNodes[len(litNodes)-1]
				if body.fn == lit {
					fr.an.dispatch = append(fr.an.dispatch, dispatchSite{
						method: fun.Sel.Name, body: body, file: fr.node.file, pos: x.Pos()})
				}
			}
		}
	}
}

// expr walks an expression for nested calls, literals and writes.
func (fr *frame) expr(e ast.Expr) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		fr.call(x)
	case *ast.FuncLit:
		// A literal flowing somewhere untracked (returned, stored in a
		// struct): fold conservatively — someone may run it.
		n := fr.hatchLit(x)
		fr.node.calls = append(fr.node.calls, callSite{lit: n, pos: x.Pos()})
	case *ast.ParenExpr:
		fr.expr(x.X)
	case *ast.BinaryExpr:
		fr.expr(x.X)
		fr.expr(x.Y)
	case *ast.UnaryExpr:
		fr.expr(x.X)
	case *ast.StarExpr:
		fr.expr(x.X)
	case *ast.SelectorExpr:
		fr.expr(x.X)
	case *ast.IndexExpr:
		fr.expr(x.X)
		fr.expr(x.Index)
	case *ast.IndexListExpr:
		fr.expr(x.X)
	case *ast.SliceExpr:
		fr.expr(x.X)
		fr.expr(x.Low)
		fr.expr(x.High)
		fr.expr(x.Max)
	case *ast.TypeAssertExpr:
		fr.expr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			fr.expr(el)
		}
	case *ast.KeyValueExpr:
		fr.expr(x.Key)
		fr.expr(x.Value)
	}
}

// assign handles := and = families, updating the environment for local
// bindings and recording effects for shared ones.
func (fr *frame) assign(x *ast.AssignStmt) {
	aligned := len(x.Lhs) == len(x.Rhs)
	// A literal bound straight to a fresh local gets no conservative
	// fold: its call sites resolve precisely through litFor, and a
	// blanket fold would double-report its writes with unknown args.
	boundLits := map[int]*funcNode{}
	for i, r := range x.Rhs {
		if lit, ok := r.(*ast.FuncLit); ok && x.Tok == token.DEFINE && aligned {
			if id, ok2 := x.Lhs[i].(*ast.Ident); ok2 && id.Name != "_" && fr.varOf(id) != nil {
				boundLits[i] = fr.hatchLit(lit)
				continue
			}
		}
		fr.expr(r)
	}
	for i, lh := range x.Lhs {
		var rhs ast.Expr
		if aligned {
			rhs = x.Rhs[i]
		}
		if x.Tok == token.DEFINE {
			id, ok := lh.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			vr := fr.varOf(id)
			if vr == nil {
				continue
			}
			if n := boundLits[i]; n != nil {
				fr.lits[vr] = n
				fr.node.env[vr] = &origin{kind: oLocal, vr: vr}
				continue
			}
			if rhs != nil {
				fr.node.env[vr] = fr.originOf(rhs)
			} else {
				fr.node.env[vr] = unknownOrigin
			}
			continue
		}
		// Plain or compound assignment.
		if id, ok := ast.Unparen(lh).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			vr := fr.varOf(id)
			if vr != nil && fr.isLocalHere(vr) {
				// Rebinding a local: update the alias, no shared write.
				if x.Tok == token.ASSIGN && rhs != nil {
					if o := fr.originOf(rhs); !(o.kind == oUnknown && fr.sameVarOrigin(rhs, vr)) {
						fr.node.env[vr] = o
					}
				}
				continue
			}
			// Captured or global variable cell: that is a shared write.
			fr.recordWrite(fr.lookupVar(vr), id.Pos())
			continue
		}
		fr.recordWrite(fr.writeTarget(lh), lh.Pos())
	}
}

// sameVarOrigin reports the self-append pattern x = append(x, ...)
// so the alias for x is kept instead of degraded to unknown.
func (fr *frame) sameVarOrigin(rhs ast.Expr, vr *types.Var) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || fr.builtinName(call) != "append" || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && fr.varOf(id) == vr
}

// block walks a statement list.
func (fr *frame) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		fr.stmt(s)
	}
}

// stmt walks one statement.
func (fr *frame) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		fr.block(x)
	case *ast.ExprStmt:
		fr.expr(x.X)
	case *ast.AssignStmt:
		fr.assign(x)
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			vr := fr.varOf(id)
			if vr != nil && fr.isLocalHere(vr) {
				return
			}
			fr.recordWrite(fr.lookupVar(vr), x.Pos())
			return
		}
		fr.recordWrite(fr.writeTarget(x.X), x.Pos())
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, sp := range gd.Specs {
			vs, ok := sp.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				fr.expr(v)
			}
			for i, nm := range vs.Names {
				vr := fr.varOf(nm)
				if vr == nil {
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					fr.node.env[vr] = fr.originOf(vs.Values[i])
				} else {
					fr.node.env[vr] = &origin{kind: oLocal, vr: vr}
				}
			}
		}
	case *ast.ForStmt:
		fr.stmt(x.Init)
		// Loop-variable pattern: for i := lo; i < hi; ... gives i the
		// oLoop origin the confinement check understands.
		if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE &&
			len(init.Lhs) == 1 && len(init.Rhs) == 1 {
			if id, ok := init.Lhs[0].(*ast.Ident); ok {
				if cond, ok := x.Cond.(*ast.BinaryExpr); ok &&
					(cond.Op == token.LSS || cond.Op == token.LEQ) {
					if cid, ok := ast.Unparen(cond.X).(*ast.Ident); ok && cid.Name == id.Name {
						if vr := fr.varOf(id); vr != nil {
							fr.node.env[vr] = &origin{kind: oLoop,
								lo: fr.originOf(init.Rhs[0]), hi: fr.originOf(cond.Y)}
						}
					}
				}
			}
		}
		fr.expr(x.Cond)
		fr.stmt(x.Post)
		fr.block(x.Body)
	case *ast.RangeStmt:
		fr.expr(x.X)
		if x.Tok == token.DEFINE {
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if vr := fr.varOf(id); vr != nil {
						fr.node.env[vr] = unknownOrigin
					}
				}
			}
		} else {
			// Assigning range results to existing non-local lvalues.
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if e == nil {
					continue
				}
				if id, ok := e.(*ast.Ident); ok {
					if vr := fr.varOf(id); vr != nil && fr.isLocalHere(vr) {
						fr.node.env[vr] = unknownOrigin
						continue
					}
				}
				fr.recordWrite(fr.writeTarget(e), e.Pos())
			}
		}
		fr.block(x.Body)
	case *ast.IfStmt:
		fr.stmt(x.Init)
		fr.expr(x.Cond)
		fr.block(x.Body)
		fr.stmt(x.Else)
	case *ast.SwitchStmt:
		fr.stmt(x.Init)
		fr.expr(x.Tag)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					fr.expr(e)
				}
				for _, st := range cc.Body {
					fr.stmt(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		fr.stmt(x.Init)
		fr.stmt(x.Assign)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					fr.stmt(st)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				fr.stmt(cc.Comm)
				for _, st := range cc.Body {
					fr.stmt(st)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			fr.expr(r)
		}
	case *ast.DeferStmt:
		fr.call(x.Call)
	case *ast.GoStmt:
		fr.call(x.Call)
	case *ast.SendStmt:
		fr.expr(x.Chan)
		fr.expr(x.Value)
	case *ast.LabeledStmt:
		fr.stmt(x.Stmt)
	}
}
