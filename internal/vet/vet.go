// Package vet implements the interprocedural write-set analyses of
// sdcvet, the static counterpart of strategy.CheckedReducer. The
// paper's SDC correctness argument (§II.B) licenses exactly one kind of
// unsynchronized shared write: reduction-array updates issued inside an
// approved reducer, where the coloring proves same-phase disjointness.
// Everything else a Pool worker body writes must be provably private —
// thread-confined (indexed by tid or the worker's round-robin k),
// block-confined (indexed by the worker's [start, end) loop), or local
// to the body. The sdc-shared-write pass checks that discipline over
// the whole program: it summarizes which parameter, captured and global
// slices every function may write, propagates the summaries bottom-up
// through calls and closures, and flags any worker-body write to a
// shared array whose confinement it cannot prove and whose file is not
// on the approved-reducer list.
//
// The hot-loop pass rides on the same call graph: functions reachable
// from Compute or the force sweeps are kernel-hot, and allocations
// (make, new, growing append, interface boxing), defer, and map
// iteration inside their loops are per-sweep costs the paper's timing
// model never budgets for.
//
// Soundness: the analysis under-approximates. Calls it cannot resolve
// statically (interface methods, func-typed parameters and fields) are
// assumed to write nothing, writes whose base it cannot name are
// skipped, and lock-based synchronization is not modeled — a mutex-
// guarded write outside an approved file is still flagged. The dynamic
// checker covers the first two gaps at runtime; the third is policy
// (ad-hoc locking in worker bodies is what the strategy layer exists to
// replace). See DESIGN.md, "Correctness tooling".
package vet

import (
	"sync"

	"sdcmd/internal/lint"
)

// ApprovedPaths lists the path prefixes (or exact files, slash-
// separated and relative to the linted root) whose worker-body writes
// to shared reduction arrays are exempt: the reducer implementations
// whose disjointness the schedule audit and the dynamic checker prove.
var ApprovedPaths = []string{
	"internal/strategy/",
}

// Passes returns the sdcvet analyses, sharing one whole-program
// write-set analysis between them.
func Passes() []lint.Pass {
	sh := &shared{}
	return []lint.Pass{
		&workerWritePass{sh: sh},
		&hotLoopPass{sh: sh},
	}
}

// shared memoizes the analysis so the driver's sequential passes do not
// recompute summaries for the same program.
type shared struct {
	mu   sync.Mutex
	pkgs []*lint.Package
	an   *analysis
}

func (s *shared) analysisFor(pkgs []*lint.Package) *analysis {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.an != nil && samePkgs(s.pkgs, pkgs) {
		return s.an
	}
	s.pkgs = pkgs
	s.an = analyze(pkgs)
	return s.an
}

func samePkgs(a, b []*lint.Package) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
