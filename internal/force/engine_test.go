package force

import (
	"errors"
	"math"
	"testing"

	"sdcmd/internal/box"
	"sdcmd/internal/core"
	"sdcmd/internal/lattice"
	"sdcmd/internal/neighbor"
	"sdcmd/internal/potential"
	"sdcmd/internal/reorder"
	"sdcmd/internal/strategy"
	"sdcmd/internal/vec"
)

// sys bundles a small jittered bcc iron crystal with its list and
// decomposition for engine tests.
type sys struct {
	pot  potential.EAM
	bx   box.Box
	pos  []vec.Vec3
	list *neighbor.List
	dec  *core.Decomposition
}

func newSys(t *testing.T, cells int, jitter float64) *sys {
	t.Helper()
	cfg := lattice.MustBuild(lattice.BCC, cells, cells, cells, 2.8665)
	if jitter > 0 {
		cfg.Jitter(jitter, 7)
	}
	pot := potential.DefaultFe()
	list, err := neighbor.Builder{Cutoff: pot.Cutoff(), Skin: 0.5, Half: true}.Build(cfg.Box, cfg.Pos)
	if err != nil {
		t.Fatal(err)
	}
	// Small crystals cannot satisfy the 2·reach subdomain constraint;
	// leave dec nil there (only serial-path tests use such systems).
	dec, err := core.Decompose(cfg.Box, cfg.Pos, core.Dim2, pot.Cutoff()+0.5)
	if err != nil && !errors.Is(err, core.ErrTooFewSubdomains) {
		t.Fatal(err)
	}
	return &sys{pot: pot, bx: cfg.Box, pos: cfg.Pos, list: list, dec: dec}
}

func (s *sys) serial(t *testing.T) strategy.Reducer {
	t.Helper()
	r, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: s.list})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewEngineValidation(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(10))
	if _, err := NewEngine(nil, bx); err == nil {
		t.Error("nil potential accepted")
	}
	if _, err := NewEngine(potential.DefaultFe(), bx); err != nil {
		t.Errorf("valid engine rejected: %v", err)
	}
}

func TestComputeMatchesReference(t *testing.T) {
	s := newSys(t, 6, 0.12)
	eng, err := NewEngine(s.pot, s.bx)
	if err != nil {
		t.Fatal(err)
	}
	red := s.serial(t)
	f := make([]vec.Vec3, len(s.pos))
	res, err := eng.Compute(red, s.pos, f)
	if err != nil {
		t.Fatal(err)
	}
	wantF, _, wantPair, wantEmbed := Reference(s.pot, s.bx, s.pos)
	for i := range f {
		if !f[i].ApproxEqual(wantF[i], 1e-9*(1+wantF[i].Norm())) {
			t.Fatalf("force[%d] = %v, reference %v", i, f[i], wantF[i])
		}
	}
	if math.Abs(res.EmbedEnergy-wantEmbed) > 1e-8*(1+math.Abs(wantEmbed)) {
		t.Errorf("embed energy %g, reference %g", res.EmbedEnergy, wantEmbed)
	}
	total, pair, embed := eng.PotentialEnergy(red, s.pos)
	if math.Abs(pair-wantPair) > 1e-8*(1+math.Abs(wantPair)) {
		t.Errorf("pair energy %g, reference %g", pair, wantPair)
	}
	if math.Abs(embed-wantEmbed) > 1e-8*(1+math.Abs(wantEmbed)) {
		t.Errorf("embed energy %g, reference %g", embed, wantEmbed)
	}
	if math.Abs(total-(wantPair+wantEmbed)) > 1e-8*(1+math.Abs(total)) {
		t.Errorf("total %g, reference %g", total, wantPair+wantEmbed)
	}
}

func TestComputeRejectsBadForceArray(t *testing.T) {
	s := newSys(t, 6, 0)
	eng, _ := NewEngine(s.pot, s.bx)
	red := s.serial(t)
	if _, err := eng.Compute(red, s.pos, make([]vec.Vec3, 3)); err == nil {
		t.Error("mismatched force array accepted")
	}
}

func TestForceMatchesNumericalGradient(t *testing.T) {
	// eq. (2) consistency: analytic force = −∂E/∂r numerically.
	cfg := lattice.MustBuild(lattice.BCC, 3, 3, 3, 2.8665)
	cfg.Jitter(0.15, 3)
	pot := potential.DefaultFe()
	f, _, _, _ := Reference(pot, cfg.Box, cfg.Pos)
	for _, i := range []int{0, 7, 25, 53} {
		num := NumericalForce(pot, cfg.Box, cfg.Pos, i, 1e-6)
		if !f[i].ApproxEqual(num, 1e-4*(1+f[i].Norm())) {
			t.Errorf("atom %d: analytic %v vs numeric %v", i, f[i], num)
		}
	}
}

func TestNewtonsThirdLawTotalForceZero(t *testing.T) {
	s := newSys(t, 6, 0.1)
	eng, _ := NewEngine(s.pot, s.bx)
	red := s.serial(t)
	f := make([]vec.Vec3, len(s.pos))
	if _, err := eng.Compute(red, s.pos, f); err != nil {
		t.Fatal(err)
	}
	net := vec.Sum(f)
	if net.Norm() > 1e-9*float64(len(f)) {
		t.Errorf("ΣF = %v, want ~0", net)
	}
}

func TestPerfectLatticeHasZeroForces(t *testing.T) {
	// Symmetry: every atom in a perfect periodic bcc crystal feels no
	// net force.
	s := newSys(t, 4, 0)
	eng, _ := NewEngine(s.pot, s.bx)
	red := s.serial(t)
	f := make([]vec.Vec3, len(s.pos))
	if _, err := eng.Compute(red, s.pos, f); err != nil {
		t.Fatal(err)
	}
	if worst := vec.MaxNorm(f); worst > 1e-10 {
		t.Errorf("max |F| on perfect lattice = %g, want ~0", worst)
	}
}

func TestAllStrategiesAgreeOnPhysics(t *testing.T) {
	s := newSys(t, 6, 0.1)
	eng, _ := NewEngine(s.pot, s.bx)
	ref := s.serial(t)
	want := make([]vec.Vec3, len(s.pos))
	wantRes, err := eng.Compute(ref, s.pos, want)
	if err != nil {
		t.Fatal(err)
	}
	pool := strategy.MustNewPool(4)
	defer pool.Close()
	for _, k := range []strategy.Kind{strategy.SDC, strategy.CS, strategy.AtomicCS, strategy.SAP, strategy.RC} {
		red, err := strategy.New(strategy.Config{Kind: k, List: s.list, Pool: pool, Decomp: s.dec})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]vec.Vec3, len(s.pos))
		res, err := eng.Compute(red, s.pos, got)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !got[i].ApproxEqual(want[i], 1e-9*(1+want[i].Norm())) {
				t.Fatalf("%v: force[%d] = %v, want %v", k, i, got[i], want[i])
			}
		}
		if math.Abs(res.EmbedEnergy-wantRes.EmbedEnergy) > 1e-8*(1+math.Abs(wantRes.EmbedEnergy)) {
			t.Errorf("%v: embed %g, want %g", k, res.EmbedEnergy, wantRes.EmbedEnergy)
		}
	}
}

func TestRhoDiagnostics(t *testing.T) {
	s := newSys(t, 4, 0)
	eng, _ := NewEngine(s.pot, s.bx)
	red := s.serial(t)
	f := make([]vec.Vec3, len(s.pos))
	res, err := eng.Compute(red, s.pos, f)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect lattice: all densities identical and positive.
	if res.MinRho <= 0 {
		t.Errorf("MinRho = %g, want > 0", res.MinRho)
	}
	if math.Abs(res.MaxRho-res.MinRho) > 1e-9 {
		t.Errorf("lattice ρ spread [%g, %g], want uniform", res.MinRho, res.MaxRho)
	}
	if len(eng.Rho()) != len(s.pos) {
		t.Error("Rho() length wrong")
	}
}

func TestVirial(t *testing.T) {
	s := newSys(t, 5, 0.05)
	eng, _ := NewEngine(s.pot, s.bx)
	red := s.serial(t)

	// Virial before Compute must error.
	if _, err := eng.Virial(red, s.pos); err == nil {
		t.Error("Virial without Compute accepted")
	}
	f := make([]vec.Vec3, len(s.pos))
	if _, err := eng.Compute(red, s.pos, f); err != nil {
		t.Fatal(err)
	}
	w, err := eng.Virial(red, s.pos)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		t.Errorf("virial = %g", w)
	}
	// Compressed crystal should push outward: positive virial when the
	// lattice is squeezed below equilibrium.
	squeezeBox := s.bx
	squeezed := make([]vec.Vec3, len(s.pos))
	copy(squeezed, s.pos)
	squeezeBox.ApplyStrain(squeezed, vec.Splat(-0.06))
	squeezeBox = squeezeBox.Strained(vec.Splat(-0.06))
	engS, _ := NewEngine(s.pot, squeezeBox)
	listS, err := neighbor.Builder{Cutoff: s.pot.Cutoff(), Skin: 0.3, Half: true}.Build(squeezeBox, squeezed)
	if err != nil {
		t.Fatal(err)
	}
	redS, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: listS})
	if err != nil {
		t.Fatal(err)
	}
	fS := make([]vec.Vec3, len(squeezed))
	if _, err := engS.Compute(redS, squeezed, fS); err != nil {
		t.Fatal(err)
	}
	wS, err := engS.Virial(redS, squeezed)
	if err != nil {
		t.Fatal(err)
	}
	if wS <= w {
		t.Errorf("squeezing did not raise the virial: %g -> %g", w, wS)
	}
}

func TestPairOnlyPotentialThroughEngine(t *testing.T) {
	// The pure pair path (paper's one-phase comparison point): embed
	// energy must vanish and forces must match the LJ-only reference.
	cfg := lattice.MustBuild(lattice.FCC, 4, 4, 4, 1.5) // reduced units
	cfg.Jitter(0.05, 11)
	pot := potential.PairOnly{P: potential.DefaultLJ()}
	list, err := neighbor.Builder{Cutoff: pot.Cutoff(), Skin: 0.3, Half: true}.Build(cfg.Box, cfg.Pos)
	if err != nil {
		t.Fatal(err)
	}
	red, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: list})
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine(pot, cfg.Box)
	f := make([]vec.Vec3, cfg.N())
	res, err := eng.Compute(red, cfg.Pos, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.EmbedEnergy != 0 {
		t.Errorf("pair-only embed energy = %g", res.EmbedEnergy)
	}
	wantF, _, _, _ := Reference(pot, cfg.Box, cfg.Pos)
	for i := range f {
		if !f[i].ApproxEqual(wantF[i], 1e-9*(1+wantF[i].Norm())) {
			t.Fatalf("LJ force[%d] = %v, want %v", i, f[i], wantF[i])
		}
	}
}

func TestTabulatedPotentialThroughEngine(t *testing.T) {
	// The spline-tabulated EAM must land close to the analytic one.
	s := newSys(t, 4, 0.1)
	tab, err := potential.Tabulate(s.pot, 4000, 4000, 40)
	if err != nil {
		t.Fatal(err)
	}
	red := s.serial(t)
	engA, _ := NewEngine(s.pot, s.bx)
	engT, _ := NewEngine(tab, s.bx)
	fa := make([]vec.Vec3, len(s.pos))
	ft := make([]vec.Vec3, len(s.pos))
	if _, err := engA.Compute(red, s.pos, fa); err != nil {
		t.Fatal(err)
	}
	if _, err := engT.Compute(red, s.pos, ft); err != nil {
		t.Fatal(err)
	}
	for i := range fa {
		if !fa[i].ApproxEqual(ft[i], 1e-3*(1+fa[i].Norm())) {
			t.Fatalf("tabulated force[%d] = %v, analytic %v", i, ft[i], fa[i])
		}
	}
}

func TestEmptySystem(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(10))
	list, err := neighbor.Builder{Cutoff: 3.5, Half: true}.Build(bx, nil)
	if err != nil {
		t.Fatal(err)
	}
	red, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: list})
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine(potential.DefaultFe(), bx)
	res, err := eng.Compute(red, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.EmbedEnergy != 0 || res.MinRho != 0 || res.MaxRho != 0 {
		t.Errorf("empty system result = %+v", res)
	}
}

func TestStressTensor(t *testing.T) {
	s := newSys(t, 5, 0.05)
	eng, _ := NewEngine(s.pot, s.bx)
	red := s.serial(t)
	if _, err := eng.StressTensor(red, s.pos); err == nil {
		t.Error("StressTensor without Compute accepted")
	}
	f := make([]vec.Vec3, len(s.pos))
	if _, err := eng.Compute(red, s.pos, f); err != nil {
		t.Fatal(err)
	}
	w, err := eng.StressTensor(red, s.pos)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric, and its trace equals the scalar virial.
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if w[a][b] != w[b][a] {
				t.Fatalf("stress tensor not symmetric at (%d,%d)", a, b)
			}
		}
	}
	virial, err := eng.Virial(red, s.pos)
	if err != nil {
		t.Fatal(err)
	}
	trace := w[0][0] + w[1][1] + w[2][2]
	if math.Abs(trace-virial) > 1e-8*(1+math.Abs(virial)) {
		t.Errorf("tr(W) = %g, scalar virial %g", trace, virial)
	}
	// A cubic crystal at rest: nearly isotropic, tiny off-diagonals.
	offMax := 0.0
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if a != b && math.Abs(w[a][b]) > offMax {
				offMax = math.Abs(w[a][b])
			}
		}
	}
	diagScale := math.Abs(w[0][0]) + 1
	if offMax > 0.2*diagScale {
		t.Errorf("off-diagonal stress %g too large vs diagonal %g", offMax, w[0][0])
	}
	// Uniaxial strain breaks isotropy: the strained axis must differ
	// from the others.
	strained := s.bx
	pos2 := append([]vec.Vec3(nil), s.pos...)
	strained.ApplyStrain(pos2, vec.New(0.04, 0, 0))
	strained = strained.Strained(vec.New(0.04, 0, 0))
	eng2, _ := NewEngine(s.pot, strained)
	list2, err := neighbor.Builder{Cutoff: s.pot.Cutoff(), Skin: 0.3, Half: true}.Build(strained, pos2)
	if err != nil {
		t.Fatal(err)
	}
	red2, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: list2})
	if err != nil {
		t.Fatal(err)
	}
	f2 := make([]vec.Vec3, len(pos2))
	if _, err := eng2.Compute(red2, pos2, f2); err != nil {
		t.Fatal(err)
	}
	w2, err := eng2.StressTensor(red2, pos2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w2[0][0]-w2[1][1]) < 1e-6 {
		t.Error("uniaxial strain did not split the stress diagonal")
	}
}

func TestTranslationInvariance(t *testing.T) {
	// Rigidly shifting every atom (with wrap) must leave forces and
	// energy unchanged: the engine depends only on relative geometry.
	s := newSys(t, 4, 0.1)
	eng, _ := NewEngine(s.pot, s.bx)
	red := s.serial(t)
	f0 := make([]vec.Vec3, len(s.pos))
	if _, err := eng.Compute(red, s.pos, f0); err != nil {
		t.Fatal(err)
	}
	e0, _, _ := eng.PotentialEnergy(red, s.pos)

	shift := vec.New(1.37, -2.2, 0.61)
	shifted := make([]vec.Vec3, len(s.pos))
	for i, p := range s.pos {
		shifted[i] = s.bx.Wrap(p.Add(shift))
	}
	// The neighbor list indices survive a rigid shift (same relative
	// geometry), so reuse the same reducer.
	f1 := make([]vec.Vec3, len(shifted))
	if _, err := eng.Compute(red, shifted, f1); err != nil {
		t.Fatal(err)
	}
	e1, _, _ := eng.PotentialEnergy(red, shifted)
	if math.Abs(e1-e0) > 1e-8*(1+math.Abs(e0)) {
		t.Errorf("energy not translation invariant: %g vs %g", e0, e1)
	}
	for i := range f0 {
		if !f0[i].ApproxEqual(f1[i], 1e-8*(1+f0[i].Norm())) {
			t.Fatalf("force[%d] changed under translation: %v vs %v", i, f0[i], f1[i])
		}
	}
}

func TestPermutationEquivariance(t *testing.T) {
	// Renumbering atoms (with a remapped list) permutes forces exactly.
	s := newSys(t, 4, 0.1)
	eng, _ := NewEngine(s.pot, s.bx)
	red := s.serial(t)
	f0 := make([]vec.Vec3, len(s.pos))
	if _, err := eng.Compute(red, s.pos, f0); err != nil {
		t.Fatal(err)
	}
	perm := reorder.Scramble(len(s.pos), 77)
	newPos := perm.ApplyVec3(s.pos)
	newList := perm.RemapList(s.list)
	newRed, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: newList})
	if err != nil {
		t.Fatal(err)
	}
	f1 := make([]vec.Vec3, len(newPos))
	if _, err := eng.Compute(newRed, newPos, f1); err != nil {
		t.Fatal(err)
	}
	for newIdx, old := range perm.NewToOld {
		if !f1[newIdx].ApproxEqual(f0[old], 1e-9*(1+f0[old].Norm())) {
			t.Fatalf("force not equivariant at new=%d old=%d", newIdx, old)
		}
	}
}
