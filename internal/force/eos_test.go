package force

import (
	"math"
	"testing"

	"sdcmd/internal/lattice"
	"sdcmd/internal/potential"
)

// eosPoint computes the cohesive energy per atom of a perfect bcc
// crystal at lattice constant a.
func eosPoint(t *testing.T, pot potential.EAM, a float64) float64 {
	t.Helper()
	cfg := lattice.MustBuild(lattice.BCC, 3, 3, 3, a)
	_, total, _, _ := Reference(pot, cfg.Box, cfg.Pos)
	return total / float64(cfg.N())
}

// TestEquationOfState characterizes both Fe parameterizations: the
// E(a) curve must have a single minimum at a physically sensible
// lattice constant, negative (cohesive) energy there, and positive
// curvature (stability / positive bulk modulus).
func TestEquationOfState(t *testing.T) {
	for _, tc := range []struct {
		name string
		pot  potential.EAM
		// acceptable window for the equilibrium lattice constant
		aLo, aHi float64
	}{
		{"finnis-sinclair", potential.DefaultFe(), 2.6, 3.2},
		{"johnson", potential.MustNewFeEAM(potential.JohnsonFeParams()), 2.6, 3.2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Scan E(a) and locate the minimum.
			const da = 0.01
			bestA, bestE := 0.0, math.Inf(1)
			prev := math.Inf(1)
			dips := 0
			for a := 2.5; a <= 3.4; a += da {
				e := eosPoint(t, tc.pot, a)
				if e < bestE {
					bestA, bestE = a, e
				}
				if e > prev && dips == 0 {
					dips = 1 // passed the minimum once
				} else if e < prev && dips == 1 {
					t.Errorf("E(a) not convex around the minimum near a=%g", a)
					break
				}
				prev = e
			}
			if bestA < tc.aLo || bestA > tc.aHi {
				t.Errorf("equilibrium a0 = %g, want in [%g, %g]", bestA, tc.aLo, tc.aHi)
			}
			if bestE >= 0 {
				t.Errorf("cohesive energy %g, want negative", bestE)
			}
			if bestE < -15 {
				t.Errorf("cohesive energy %g eV/atom implausibly deep", bestE)
			}
			// Curvature -> bulk modulus B = V d²E/dV² > 0; estimate via
			// central difference in a.
			e0 := eosPoint(t, tc.pot, bestA)
			ep := eosPoint(t, tc.pot, bestA+da)
			em := eosPoint(t, tc.pot, bestA-da)
			d2 := (ep - 2*e0 + em) / (da * da)
			if d2 <= 0 {
				t.Errorf("d²E/da² = %g at minimum, want positive", d2)
			}
			// Convert to bulk modulus: V/atom = a³/2, B = (d²E/da²)·a²·(2/(9a³))·...
			// For the log we use B = (2/(9a)) d²E/da² per atom volume a³/2:
			// B = d²E/da² · (1/(a·4.5)) / (a²/2) ... report in eV/Å³ and GPa.
			vAtom := bestA * bestA * bestA / 2
			b := d2 * bestA * bestA / (9 * vAtom)
			const eVA3toGPa = 160.2176
			t.Logf("%s: a0 = %.3f Å, E_coh = %.3f eV/atom, B ≈ %.0f GPa (expt Fe: a0=2.87, E=-4.28, B=170)",
				tc.name, bestA, bestE, b*eVA3toGPa)
			if b <= 0 {
				t.Errorf("bulk modulus %g non-positive", b)
			}
		})
	}
}
