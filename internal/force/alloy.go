package force

import (
	"fmt"
	"math"

	"sdcmd/internal/box"
	"sdcmd/internal/potential"
	"sdcmd/internal/strategy"
	"sdcmd/internal/telemetry"
	"sdcmd/internal/vec"
)

// AlloyEngine is the multi-species counterpart of Engine: the same
// three EAM phases, with species-resolved pair, density and embedding
// functions. It reuses the identical strategy.Reducer machinery — the
// SDC coloring argument is purely geometric and species-blind.
type AlloyEngine struct {
	// Pot is the alloy potential.
	Pot potential.AlloyEAM
	// Box supplies the minimum-image convention.
	Box box.Box
	// Species[i] is atom i's species index.
	Species []int32

	rho []float64
	fp  []float64

	tel *telemetry.Recorder // per-phase timers; nil = disabled
}

// SetTelemetry attaches a recorder that times the three phases of every
// Compute; nil detaches.
func (e *AlloyEngine) SetTelemetry(rec *telemetry.Recorder) { e.tel = rec }

// NewAlloyEngine validates the species array against the potential.
func NewAlloyEngine(pot potential.AlloyEAM, bx box.Box, species []int32) (*AlloyEngine, error) {
	if pot == nil {
		return nil, fmt.Errorf("force: nil alloy potential")
	}
	if !(pot.Cutoff() > 0) {
		return nil, fmt.Errorf("force: alloy cutoff %g must be positive", pot.Cutoff())
	}
	ns := pot.Species()
	for i, s := range species {
		if s < 0 || int(s) >= ns {
			return nil, fmt.Errorf("force: atom %d has species %d, potential knows %d", i, s, ns)
		}
	}
	return &AlloyEngine{Pot: pot, Box: bx, Species: species}, nil
}

func (e *AlloyEngine) resize(n int) {
	if cap(e.rho) < n {
		e.rho = make([]float64, n)
		e.fp = make([]float64, n)
		return
	}
	e.rho = e.rho[:n]
	e.fp = e.fp[:n]
}

// Compute evaluates forces into f and returns the embedding energy.
// len(pos) must equal len(f) and len(Species).
func (e *AlloyEngine) Compute(red strategy.Reducer, pos []vec.Vec3, f []vec.Vec3) (Result, error) {
	n := len(pos)
	if len(f) != n || len(e.Species) != n {
		return Result{}, fmt.Errorf("force: alloy sizes pos=%d f=%d species=%d", n, len(f), len(e.Species))
	}
	e.resize(n)
	cut := e.Pot.Cutoff()

	// Phase 1: species-resolved densities. ρ_i gains the density
	// donated by j's species and vice versa (direction-consistent, as
	// the strategy contract requires).
	sp := e.tel.Span()
	for i := range e.rho {
		e.rho[i] = 0
	}
	red.SweepScalar(e.rho, func(i, j int32) (float64, float64) {
		r := e.Box.Distance(pos[i], pos[j])
		if r <= 0 || r >= cut {
			return 0, 0
		}
		phiFromJ, _ := e.Pot.DensityOf(int(e.Species[j]), r)
		phiFromI, _ := e.Pot.DensityOf(int(e.Species[i]), r)
		return phiFromJ, phiFromI
	})

	e.tel.EndPhase(telemetry.PhaseDensity, sp)

	// Phase 2: per-species embedding.
	sp = e.tel.Span()
	threads := red.Threads()
	partial := make([]float64, threads)
	minR := make([]float64, threads)
	maxR := make([]float64, threads)
	for t := range minR {
		minR[t] = math.Inf(1)
		maxR[t] = math.Inf(-1)
	}
	red.ParallelForAtoms(func(start, end, tid int) {
		sum := 0.0
		lo, hi := minR[tid], maxR[tid]
		for i := start; i < end; i++ {
			fe, dfe := e.Pot.EmbedOf(int(e.Species[i]), e.rho[i])
			e.fp[i] = dfe
			sum += fe
			if e.rho[i] < lo {
				lo = e.rho[i]
			}
			if e.rho[i] > hi {
				hi = e.rho[i]
			}
		}
		partial[tid] += sum
		minR[tid], maxR[tid] = lo, hi
	})
	res := Result{MinRho: math.Inf(1), MaxRho: math.Inf(-1)}
	for t := 0; t < threads; t++ {
		res.EmbedEnergy += partial[t]
		if minR[t] < res.MinRho {
			res.MinRho = minR[t]
		}
		if maxR[t] > res.MaxRho {
			res.MaxRho = maxR[t]
		}
	}
	if n == 0 {
		res.MinRho, res.MaxRho = 0, 0
	}
	e.tel.EndPhase(telemetry.PhaseEmbed, sp)

	// Phase 3: forces. The embedding coupling pairs F'(ρ_i) with the
	// *partner's* density derivative: eq. (2) generalized to species.
	sp = e.tel.Span()
	vec.Fill(f, vec.Vec3{})
	fp := e.fp
	red.SweepVector(f, func(i, j int32) vec.Vec3 {
		d := e.Box.MinImage(pos[i], pos[j])
		r := d.Norm()
		if r <= 0 || r >= cut {
			return vec.Vec3{}
		}
		si, sj := int(e.Species[i]), int(e.Species[j])
		_, dv := e.Pot.PairEnergy(si, sj, r)
		_, dphiJ := e.Pot.DensityOf(sj, r) // j's donation to i
		_, dphiI := e.Pot.DensityOf(si, r) // i's donation to j
		coeff := dv + fp[i]*dphiJ + fp[j]*dphiI
		return d.Scale(-coeff / r)
	})
	e.tel.EndPhase(telemetry.PhaseForce, sp)
	return res, nil
}

// PotentialEnergy returns total, pair and embedding energies at pos.
func (e *AlloyEngine) PotentialEnergy(red strategy.Reducer, pos []vec.Vec3) (total, pair, embed float64, err error) {
	n := len(pos)
	f := make([]vec.Vec3, n)
	res, err := e.Compute(red, pos, f)
	if err != nil {
		return 0, 0, 0, err
	}
	embed = res.EmbedEnergy
	per := make([]float64, n)
	cut := e.Pot.Cutoff()
	red.SweepScalar(per, func(i, j int32) (float64, float64) {
		r := e.Box.Distance(pos[i], pos[j])
		if r <= 0 || r >= cut {
			return 0, 0
		}
		v, _ := e.Pot.PairEnergy(int(e.Species[i]), int(e.Species[j]), r)
		return v / 2, v / 2
	})
	for _, v := range per {
		pair += v
	}
	return pair + embed, pair, embed, nil
}

// AlloyReference computes alloy energies and forces by direct O(N²)
// summation — the correctness oracle for AlloyEngine.
func AlloyReference(pot potential.AlloyEAM, bx box.Box, species []int32, pos []vec.Vec3) (f []vec.Vec3, total float64) {
	n := len(pos)
	f = make([]vec.Vec3, n)
	rho := make([]float64, n)
	cut := pot.Cutoff()
	pair := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := bx.MinImage(pos[i], pos[j])
			r := d.Norm()
			if r >= cut || r <= 0 {
				continue
			}
			pj, _ := pot.DensityOf(int(species[j]), r)
			pi, _ := pot.DensityOf(int(species[i]), r)
			rho[i] += pj
			rho[j] += pi
			v, _ := pot.PairEnergy(int(species[i]), int(species[j]), r)
			pair += v
		}
	}
	fp := make([]float64, n)
	embed := 0.0
	for i := 0; i < n; i++ {
		fe, dfe := pot.EmbedOf(int(species[i]), rho[i])
		embed += fe
		fp[i] = dfe
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := bx.MinImage(pos[i], pos[j])
			r := d.Norm()
			if r >= cut || r <= 0 {
				continue
			}
			si, sj := int(species[i]), int(species[j])
			_, dv := pot.PairEnergy(si, sj, r)
			_, dphiJ := pot.DensityOf(sj, r)
			_, dphiI := pot.DensityOf(si, r)
			coeff := dv + fp[i]*dphiJ + fp[j]*dphiI
			fij := d.Scale(-coeff / r)
			f[i] = f[i].Add(fij)
			f[j] = f[j].Sub(fij)
		}
	}
	return f, pair + embed
}
