package force

import (
	"sdcmd/internal/box"
	"sdcmd/internal/potential"
	"sdcmd/internal/vec"
)

// Reference computes EAM energies and forces by direct O(N²) summation
// over all pairs — no neighbor list, no strategy, no shared code with
// Engine beyond the potential itself. It is the correctness oracle for
// the whole force stack and is only meant for small test systems.
func Reference(pot potential.EAM, bx box.Box, pos []vec.Vec3) (f []vec.Vec3, total, pair, embed float64) {
	n := len(pos)
	f = make([]vec.Vec3, n)
	rho := make([]float64, n)
	cut := pot.Cutoff()

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := bx.MinImage(pos[i], pos[j])
			r := d.Norm()
			if r >= cut || r <= 0 {
				continue
			}
			phi, _ := pot.Density(r)
			rho[i] += phi
			rho[j] += phi
			v, _ := pot.Energy(r)
			pair += v
		}
	}
	fp := make([]float64, n)
	for i := 0; i < n; i++ {
		fe, dfe := pot.Embed(rho[i])
		embed += fe
		fp[i] = dfe
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := bx.MinImage(pos[i], pos[j])
			r := d.Norm()
			if r >= cut || r <= 0 {
				continue
			}
			_, dv := pot.Energy(r)
			_, dphi := pot.Density(r)
			coeff := dv + (fp[i]+fp[j])*dphi
			fij := d.Scale(-coeff / r)
			f[i] = f[i].Add(fij)
			f[j] = f[j].Sub(fij)
		}
	}
	return f, pair + embed, pair, embed
}

// NumericalForce estimates the force on atom i by central-difference
// differentiation of the total O(N²) reference energy — the strongest
// possible consistency check between the analytic force expression
// (paper eq. 2) and the energy it is supposed to derive from.
func NumericalForce(pot potential.EAM, bx box.Box, pos []vec.Vec3, i int, h float64) vec.Vec3 {
	var out vec.Vec3
	probe := make([]vec.Vec3, len(pos))
	for a := 0; a < 3; a++ {
		copy(probe, pos)
		probe[i][a] += h
		_, ep, _, _ := referenceEnergyOnly(pot, bx, probe)
		copy(probe, pos)
		probe[i][a] -= h
		_, em, _, _ := referenceEnergyOnly(pot, bx, probe)
		out[a] = -(ep - em) / (2 * h)
	}
	return out
}

func referenceEnergyOnly(pot potential.EAM, bx box.Box, pos []vec.Vec3) (f []vec.Vec3, total, pair, embed float64) {
	n := len(pos)
	rho := make([]float64, n)
	cut := pot.Cutoff()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := bx.Distance(pos[i], pos[j])
			if r >= cut || r <= 0 {
				continue
			}
			phi, _ := pot.Density(r)
			rho[i] += phi
			rho[j] += phi
			v, _ := pot.Energy(r)
			pair += v
		}
	}
	for i := 0; i < n; i++ {
		fe, _ := pot.Embed(rho[i])
		embed += fe
	}
	return nil, pair + embed, pair, embed
}
