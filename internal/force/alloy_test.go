package force

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sdcmd/internal/core"
	"sdcmd/internal/lattice"
	"sdcmd/internal/neighbor"
	"sdcmd/internal/potential"
	"sdcmd/internal/strategy"
	"sdcmd/internal/vec"
)

// alloySys builds a jittered bcc crystal with a random 50/50 species
// assignment (a concentrated random alloy).
func alloySys(t *testing.T, cells int) (*lattice.Config, []int32, *neighbor.List, *core.Decomposition) {
	t.Helper()
	cfg := lattice.MustBuild(lattice.BCC, cells, cells, cells, 2.8665)
	cfg.Jitter(0.08, 17)
	rng := rand.New(rand.NewSource(23))
	species := make([]int32, cfg.N())
	for i := range species {
		species[i] = int32(rng.Intn(2))
	}
	al := potential.DefaultFeCr()
	list, err := neighbor.Builder{Cutoff: al.Cutoff(), Skin: 0.5, Half: true}.Build(cfg.Box, cfg.Pos)
	if err != nil {
		t.Fatal(err)
	}
	// Small replicas cannot satisfy the SDC 2·reach constraint; only
	// the strategy-agreement test (cells >= 6) uses the decomposition.
	dec, err := core.Decompose(cfg.Box, cfg.Pos, core.Dim2, al.Cutoff()+0.5)
	if err != nil && !errors.Is(err, core.ErrTooFewSubdomains) {
		t.Fatal(err)
	}
	return cfg, species, list, dec
}

func TestNewAlloyEngineValidation(t *testing.T) {
	cfg := lattice.MustBuild(lattice.BCC, 3, 3, 3, 2.8665)
	al := potential.DefaultFeCr()
	if _, err := NewAlloyEngine(nil, cfg.Box, nil); err == nil {
		t.Error("nil potential accepted")
	}
	bad := make([]int32, cfg.N())
	bad[0] = 7
	if _, err := NewAlloyEngine(al, cfg.Box, bad); err == nil {
		t.Error("out-of-range species accepted")
	}
	if _, err := NewAlloyEngine(al, cfg.Box, make([]int32, cfg.N())); err != nil {
		t.Errorf("valid engine rejected: %v", err)
	}
}

func TestAlloyEngineMatchesReference(t *testing.T) {
	cfg, species, list, _ := alloySys(t, 5)
	al := potential.DefaultFeCr()
	eng, err := NewAlloyEngine(al, cfg.Box, species)
	if err != nil {
		t.Fatal(err)
	}
	red, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: list})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]vec.Vec3, cfg.N())
	if _, err := eng.Compute(red, cfg.Pos, f); err != nil {
		t.Fatal(err)
	}
	wantF, wantE := AlloyReference(al, cfg.Box, species, cfg.Pos)
	for i := range f {
		if !f[i].ApproxEqual(wantF[i], 1e-9*(1+wantF[i].Norm())) {
			t.Fatalf("alloy force[%d] = %v, want %v", i, f[i], wantF[i])
		}
	}
	total, _, _, err := eng.PotentialEnergy(red, cfg.Pos)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-wantE) > 1e-8*(1+math.Abs(wantE)) {
		t.Errorf("alloy energy %g, want %g", total, wantE)
	}
}

func TestAlloyStrategiesAgree(t *testing.T) {
	cfg, species, list, dec := alloySys(t, 6)
	al := potential.DefaultFeCr()
	eng, err := NewAlloyEngine(al, cfg.Box, species)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: list})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]vec.Vec3, cfg.N())
	if _, err := eng.Compute(serial, cfg.Pos, want); err != nil {
		t.Fatal(err)
	}
	pool := strategy.MustNewPool(3)
	defer pool.Close()
	for _, k := range []strategy.Kind{strategy.SDC, strategy.CS, strategy.SAP, strategy.RC} {
		red, err := strategy.New(strategy.Config{Kind: k, List: list, Pool: pool, Decomp: dec})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]vec.Vec3, cfg.N())
		if _, err := eng.Compute(red, cfg.Pos, got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !got[i].ApproxEqual(want[i], 1e-9*(1+want[i].Norm())) {
				t.Fatalf("%v: alloy force[%d] diverged", k, i)
			}
		}
	}
}

func TestAlloyNewtonsThirdLaw(t *testing.T) {
	cfg, species, list, _ := alloySys(t, 5)
	al := potential.DefaultFeCr()
	eng, _ := NewAlloyEngine(al, cfg.Box, species)
	red, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: list})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]vec.Vec3, cfg.N())
	if _, err := eng.Compute(red, cfg.Pos, f); err != nil {
		t.Fatal(err)
	}
	if net := vec.Sum(f); net.Norm() > 1e-9*float64(cfg.N()) {
		t.Errorf("alloy ΣF = %v", net)
	}
}

func TestAlloyForceMatchesNumericalGradient(t *testing.T) {
	cfg := lattice.MustBuild(lattice.BCC, 3, 3, 3, 2.8665)
	cfg.Jitter(0.12, 3)
	species := make([]int32, cfg.N())
	for i := range species {
		species[i] = int32(i % 2) // ordered B2-like occupation
	}
	al := potential.DefaultFeCr()
	f, _ := AlloyReference(al, cfg.Box, species, cfg.Pos)
	probe := make([]vec.Vec3, cfg.N())
	h := 1e-6
	for _, i := range []int{0, 5, 31} {
		var num vec.Vec3
		for a := 0; a < 3; a++ {
			copy(probe, cfg.Pos)
			probe[i][a] += h
			_, ep := AlloyReference(al, cfg.Box, species, probe)
			copy(probe, cfg.Pos)
			probe[i][a] -= h
			_, em := AlloyReference(al, cfg.Box, species, probe)
			num[a] = -(ep - em) / (2 * h)
		}
		if !f[i].ApproxEqual(num, 1e-4*(1+f[i].Norm())) {
			t.Errorf("alloy atom %d: analytic %v vs numeric %v", i, f[i], num)
		}
	}
}

func TestSingleSpeciesAlloyMatchesPlainEngine(t *testing.T) {
	// SingleAsAlloy over the plain Fe EAM must reproduce Engine exactly.
	cfg := lattice.MustBuild(lattice.BCC, 5, 5, 5, 2.8665)
	cfg.Jitter(0.1, 7)
	pot := potential.DefaultFe()
	list, err := neighbor.Builder{Cutoff: pot.Cutoff(), Skin: 0.5, Half: true}.Build(cfg.Box, cfg.Pos)
	if err != nil {
		t.Fatal(err)
	}
	red, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: list})
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewEngine(pot, cfg.Box)
	fPlain := make([]vec.Vec3, cfg.N())
	resPlain, err := plain.Compute(red, cfg.Pos, fPlain)
	if err != nil {
		t.Fatal(err)
	}
	alloy, err := NewAlloyEngine(potential.SingleAsAlloy{E: pot}, cfg.Box, make([]int32, cfg.N()))
	if err != nil {
		t.Fatal(err)
	}
	fAlloy := make([]vec.Vec3, cfg.N())
	resAlloy, err := alloy.Compute(red, cfg.Pos, fAlloy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fPlain {
		if !fPlain[i].ApproxEqual(fAlloy[i], 1e-12*(1+fPlain[i].Norm())) {
			t.Fatalf("single-species alloy force[%d] = %v, plain %v", i, fAlloy[i], fPlain[i])
		}
	}
	if math.Abs(resPlain.EmbedEnergy-resAlloy.EmbedEnergy) > 1e-10*(1+math.Abs(resPlain.EmbedEnergy)) {
		t.Errorf("embed energies differ: %g vs %g", resPlain.EmbedEnergy, resAlloy.EmbedEnergy)
	}
}

func TestAlloyComputeSizeMismatch(t *testing.T) {
	cfg, species, list, _ := alloySys(t, 5)
	al := potential.DefaultFeCr()
	eng, _ := NewAlloyEngine(al, cfg.Box, species)
	red, err := strategy.New(strategy.Config{Kind: strategy.Serial, List: list})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compute(red, cfg.Pos, make([]vec.Vec3, 3)); err == nil {
		t.Error("mismatched force array accepted")
	}
}
