// Package force implements the three-phase EAM force calculation the
// paper parallelizes (§II.C): (1) evaluate electron densities — the
// irregular scalar reduction of Fig. 1/7; (2) evaluate embedding
// energies and their derivatives — the dependence-free loop of phase 2;
// (3) compute forces — the irregular vector reduction of Fig. 2/8. The
// engine is strategy-agnostic: any strategy.Reducer supplies the
// scheduling and write-safety policy.
package force

import (
	"fmt"
	"math"

	"sdcmd/internal/box"
	"sdcmd/internal/core"
	"sdcmd/internal/potential"
	"sdcmd/internal/strategy"
	"sdcmd/internal/telemetry"
	"sdcmd/internal/vec"
)

// Engine evaluates EAM energies and forces for one system. It owns the
// per-atom scratch arrays (rho and F'(rho)), so one Engine must not be
// used from multiple goroutines at once; internal parallelism comes
// from the reducer.
type Engine struct {
	// Pot is the potential (a true EAM or a PairOnly adapter).
	Pot potential.EAM
	// Box supplies the minimum-image convention.
	Box box.Box

	rho []float64 // electron densities ρ_i (phase 1 output)
	fp  []float64 // embedding derivatives F'(ρ_i) (phase 2 output)

	// soa holds the positions of the current evaluation repacked into
	// structure-of-arrays component streams. The pair kernels read X/Y/Z
	// instead of gathering whole Vec3 values, so a cell-blocked sweep
	// (core.Decomposition.Contiguous) streams three dense arrays — the
	// cache-blocking layout the tasked strategy's SoA refactor targets.
	// Repacking is O(N) per evaluation against O(pairs) kernel work.
	// Forces stay AoS ([]vec.Vec3): the strategies accumulate per
	// component in place and the integrator consumes Vec3 directly.
	soa core.SoA3

	tel *telemetry.Recorder // per-phase timers; nil = disabled
}

// NewEngine validates and builds an engine.
func NewEngine(pot potential.EAM, bx box.Box) (*Engine, error) {
	if pot == nil {
		return nil, fmt.Errorf("force: nil potential")
	}
	if !(pot.Cutoff() > 0) {
		return nil, fmt.Errorf("force: potential cutoff %g must be positive", pot.Cutoff())
	}
	return &Engine{Pot: pot, Box: bx}, nil
}

// Result reports one force evaluation.
type Result struct {
	// EmbedEnergy is Σ_i F(ρ_i), collected during phase 2.
	EmbedEnergy float64
	// MinRho/MaxRho are the extreme host densities seen, a cheap
	// diagnostic for bad geometry (overlapping atoms blow ρ up).
	MinRho, MaxRho float64
}

// Rho returns the phase-1 densities of the latest evaluation (aliased;
// valid until the next call).
func (e *Engine) Rho() []float64 { return e.rho }

// SetTelemetry attaches a recorder that times the three phases of every
// Compute (§III.A's decomposition); nil detaches.
func (e *Engine) SetTelemetry(rec *telemetry.Recorder) { e.tel = rec }

func (e *Engine) resize(n int) {
	if cap(e.rho) < n {
		e.rho = make([]float64, n)
		e.fp = make([]float64, n)
		return
	}
	e.rho = e.rho[:n]
	e.fp = e.fp[:n]
}

// densityVisit is the phase-1 kernel: φ(r) flows both ways for a
// single-species system (this is also §II.D.1's optimization — i's
// contribution to j is computed in the same visit). It reads the
// SoA-packed positions of the latest pack() — three dense component
// streams instead of an AoS Vec3 gather — with arithmetic bit-identical
// to Box.Distance on the original vectors.
func (e *Engine) densityVisit() strategy.ScalarVisit {
	x, y, z := e.soa.X, e.soa.Y, e.soa.Z
	return func(i, j int32) (float64, float64) {
		r := e.Box.MinImageComp(x[i]-x[j], y[i]-y[j], z[i]-z[j]).Norm()
		phi, _ := e.Pot.Density(r)
		return phi, phi
	}
}

// forceVisit is the phase-3 kernel implementing the paper's eq. (2):
// the pair force magnitude is V'(r) + (F'(ρ_i)+F'(ρ_j))·φ'(r), directed
// along the minimum-image separation. It is antisymmetric, as the
// strategy contract requires. Like densityVisit it reads the SoA
// component streams.
func (e *Engine) forceVisit() strategy.VectorVisit {
	fp := e.fp
	x, y, z := e.soa.X, e.soa.Y, e.soa.Z
	return func(i, j int32) vec.Vec3 {
		d := e.Box.MinImageComp(x[i]-x[j], y[i]-y[j], z[i]-z[j])
		r := d.Norm()
		if r <= 0 || r >= e.Pot.Cutoff() {
			return vec.Vec3{}
		}
		_, dv := e.Pot.Energy(r)
		_, dphi := e.Pot.Density(r)
		coeff := dv + (fp[i]+fp[j])*dphi
		return d.Scale(-coeff / r)
	}
}

// pack repacks pos into the SoA scratch; every public entry point calls
// it before building kernels so the closures alias current data.
func (e *Engine) pack(pos []vec.Vec3) { e.soa.Pack(pos) }

// Compute runs the three phases and writes forces into f (overwritten).
// len(f) must equal len(pos) and match the reducer's neighbor list.
func (e *Engine) Compute(red strategy.Reducer, pos []vec.Vec3, f []vec.Vec3) (Result, error) {
	n := len(pos)
	if len(f) != n {
		return Result{}, fmt.Errorf("force: force array length %d != %d atoms", len(f), n)
	}
	e.resize(n)
	e.pack(pos)

	// Phase 1: electron densities (irregular scalar reduction).
	sp := e.tel.Span()
	for i := range e.rho {
		e.rho[i] = 0
	}
	red.SweepScalar(e.rho, e.densityVisit())
	e.tel.EndPhase(telemetry.PhaseDensity, sp)

	// Phase 2: embedding energies and F'(ρ) — no cross-iteration
	// dependence, a plain parallel-for (§II.C phase 2).
	sp = e.tel.Span()
	threads := red.Threads()
	partial := make([]float64, threads)
	minR := make([]float64, threads)
	maxR := make([]float64, threads)
	for t := range minR {
		minR[t] = math.Inf(1)
		maxR[t] = math.Inf(-1)
	}
	red.ParallelForAtoms(func(start, end, tid int) {
		sum := 0.0
		lo, hi := minR[tid], maxR[tid]
		for i := start; i < end; i++ {
			fe, dfe := e.Pot.Embed(e.rho[i])
			e.fp[i] = dfe
			sum += fe
			if e.rho[i] < lo {
				lo = e.rho[i]
			}
			if e.rho[i] > hi {
				hi = e.rho[i]
			}
		}
		partial[tid] += sum
		minR[tid], maxR[tid] = lo, hi
	})
	res := Result{MinRho: math.Inf(1), MaxRho: math.Inf(-1)}
	for t := 0; t < threads; t++ {
		res.EmbedEnergy += partial[t]
		if minR[t] < res.MinRho {
			res.MinRho = minR[t]
		}
		if maxR[t] > res.MaxRho {
			res.MaxRho = maxR[t]
		}
	}
	if n == 0 {
		res.MinRho, res.MaxRho = 0, 0
	}
	e.tel.EndPhase(telemetry.PhaseEmbed, sp)

	// Phase 3: forces (irregular vector reduction).
	sp = e.tel.Span()
	vec.Fill(f, vec.Vec3{})
	red.SweepVector(f, e.forceVisit())
	e.tel.EndPhase(telemetry.PhaseForce, sp)
	return res, nil
}

// PairEnergy computes Σ_pairs V(r) with one extra scalar sweep (each
// atom receives half of each bond's energy).
func (e *Engine) PairEnergy(red strategy.Reducer, pos []vec.Vec3) float64 {
	e.pack(pos)
	per := make([]float64, len(pos))
	x, y, z := e.soa.X, e.soa.Y, e.soa.Z
	red.SweepScalar(per, func(i, j int32) (float64, float64) {
		r := e.Box.MinImageComp(x[i]-x[j], y[i]-y[j], z[i]-z[j]).Norm()
		v, _ := e.Pot.Energy(r)
		return v / 2, v / 2
	})
	total := 0.0
	for _, v := range per {
		total += v
	}
	return total
}

// PotentialEnergy returns the full EAM energy Σ F(ρ_i) + ½ΣΣ V(r) and
// its two components. It re-runs phases 1-2 internally, so it does not
// disturb a previous Compute's outputs except the scratch arrays.
func (e *Engine) PotentialEnergy(red strategy.Reducer, pos []vec.Vec3) (total, pair, embed float64) {
	n := len(pos)
	e.resize(n)
	e.pack(pos)
	for i := range e.rho {
		e.rho[i] = 0
	}
	red.SweepScalar(e.rho, e.densityVisit())
	threads := red.Threads()
	partial := make([]float64, threads)
	red.ParallelForAtoms(func(start, end, tid int) {
		sum := 0.0
		for i := start; i < end; i++ {
			fe, dfe := e.Pot.Embed(e.rho[i])
			e.fp[i] = dfe
			sum += fe
		}
		partial[tid] += sum
	})
	for _, p := range partial {
		embed += p
	}
	pair = e.PairEnergy(red, pos)
	return pair + embed, pair, embed
}

// Virial computes W = Σ_pairs r_ij · f_ij (pair virial including the
// embedding coupling), used for the pressure diagnostic
// P = (N k_B T + W/3) / V. Compute must have run first so F'(ρ) is
// current; Virial returns an error otherwise.
func (e *Engine) Virial(red strategy.Reducer, pos []vec.Vec3) (float64, error) {
	if len(e.fp) != len(pos) {
		return 0, fmt.Errorf("force: Virial requires a preceding Compute on the same system")
	}
	e.pack(pos)
	per := make([]float64, len(pos))
	fv := e.forceVisit()
	x, y, z := e.soa.X, e.soa.Y, e.soa.Z
	red.SweepScalar(per, func(i, j int32) (float64, float64) {
		d := e.Box.MinImageComp(x[i]-x[j], y[i]-y[j], z[i]-z[j])
		w := d.Dot(fv(i, j))
		return w / 2, w / 2
	})
	total := 0.0
	for _, w := range per {
		total += w
	}
	return total, nil
}

// StressTensor computes the virial stress tensor contribution
// W_ab = Σ_pairs d_a · f_b (eV units; divide by volume for stress,
// add the kinetic term m·Σ v_a v_b for the full Cauchy stress). Compute
// must have run first so F'(ρ) is current. Six scalar sweeps — a
// diagnostic, not a hot path.
func (e *Engine) StressTensor(red strategy.Reducer, pos []vec.Vec3) ([3][3]float64, error) {
	var w [3][3]float64
	if len(e.fp) != len(pos) {
		return w, fmt.Errorf("force: StressTensor requires a preceding Compute on the same system")
	}
	e.pack(pos)
	fv := e.forceVisit()
	x, y, z := e.soa.X, e.soa.Y, e.soa.Z
	per := make([]float64, len(pos))
	for a := 0; a < 3; a++ {
		for b := a; b < 3; b++ {
			for k := range per {
				per[k] = 0
			}
			red.SweepScalar(per, func(i, j int32) (float64, float64) {
				d := e.Box.MinImageComp(x[i]-x[j], y[i]-y[j], z[i]-z[j])
				v := d[a] * fv(i, j)[b]
				return v / 2, v / 2
			})
			sum := 0.0
			for _, v := range per {
				sum += v
			}
			w[a][b] = sum
			w[b][a] = sum
		}
	}
	return w, nil
}
