package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	sp := r.Span()
	if sp.Live() {
		t.Error("nil recorder produced a live span")
	}
	if sp.Elapsed() != 0 {
		t.Error("dead span reported non-zero elapsed time")
	}
	// None of these may panic.
	r.AddPhase(PhaseDensity, time.Second)
	r.EndPhase(PhaseForce, sp)
	r.AddColor(0, time.Second)
	r.AddWorker(0, time.Second, time.Second)
	r.AddWorkerTasks(0, 1, 1, 1)
	r.IncRebuild()
	r.IncFault()
	r.IncRollback()
	r.IncCheckpoint()
	if m := r.Snapshot(); m.Rebuilds != 0 || m.PhaseSeconds() != 0 {
		t.Errorf("nil recorder snapshot not zero: %+v", m)
	}
}

func TestAddWorkerTasksAccumulates(t *testing.T) {
	r := NewRecorder()
	r.AddWorkerTasks(2, 7, 3, 5)
	r.AddWorkerTasks(2, 1, 1, 1)
	r.AddWorkerTasks(0, 4, 0, 0)
	r.AddWorkerTasks(-1, 9, 9, 9) // negative worker ids are dropped

	m := r.Snapshot()
	if len(m.Workers) != 3 {
		t.Fatalf("got %d worker stats, want 3 (ids 0..2): %+v", len(m.Workers), m.Workers)
	}
	w0, w2 := m.Workers[0], m.Workers[2]
	if w0.Tasks != 4 || w0.Steals != 0 || w0.Stolen != 0 {
		t.Errorf("worker 0 task stats = %+v", w0)
	}
	if w2.Tasks != 8 || w2.Steals != 4 || w2.Stolen != 6 {
		t.Errorf("worker 2 task stats = %+v, want tasks=8 steals=4 stolen=6", w2)
	}

	// Busy/wait recorded for the same worker must merge into one row.
	r.AddWorker(2, 3*time.Second, time.Second)
	m = r.Snapshot()
	if len(m.Workers) != 3 {
		t.Fatalf("AddWorker split the rows: %+v", m.Workers)
	}
	if m.Workers[2].Tasks != 8 || m.Workers[2].Utilization != 0.75 {
		t.Errorf("merged row = %+v", m.Workers[2])
	}
}

func TestWritePrometheusTaskCounters(t *testing.T) {
	r := NewRecorder()
	r.AddWorker(0, time.Second, time.Second)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "sdcmd_worker_tasks_total") {
		t.Error("task counter family emitted with no task activity")
	}

	r.AddWorkerTasks(1, 6, 2, 3)
	buf.Reset()
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sdcmd_worker_tasks_total{worker="1"} 6`,
		`sdcmd_worker_steals_total{worker="1"} 2`,
		`sdcmd_worker_stolen_tasks_total{worker="1"} 3`,
		`sdcmd_worker_tasks_total{worker="0"} 0`,
		"# TYPE sdcmd_worker_tasks_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder()
	r.AddPhase(PhaseDensity, 2*time.Second)
	r.AddPhase(PhaseDensity, time.Second)
	r.AddPhase(PhaseEmbed, time.Second)
	r.AddPhase(PhaseForce, 4*time.Second)
	r.AddColor(1, time.Second)
	r.AddColor(1, time.Second)
	r.AddColor(MaxColors+5, time.Second) // folded into the last bucket
	r.AddWorker(0, 3*time.Second, time.Second)
	r.IncRebuild()
	r.IncRebuild()
	r.IncFault()
	r.IncRollback()
	r.IncCheckpoint()

	m := r.Snapshot()
	if m.Density.Seconds != 3 || m.Density.Calls != 2 {
		t.Errorf("density = %+v, want 3s over 2 calls", m.Density)
	}
	if m.Embed.Seconds != 1 || m.Force.Seconds != 4 {
		t.Errorf("embed/force = %+v / %+v", m.Embed, m.Force)
	}
	if got := m.PhaseSeconds(); got != 8 {
		t.Errorf("PhaseSeconds = %g, want 8", got)
	}
	if len(m.Colors) != 2 {
		t.Fatalf("got %d color stats, want 2 (color 1 and the overflow bucket): %+v", len(m.Colors), m.Colors)
	}
	if m.Colors[0].Color != 1 || m.Colors[0].Seconds != 2 || m.Colors[0].Sweeps != 2 {
		t.Errorf("color 1 stat = %+v", m.Colors[0])
	}
	if m.Colors[1].Color != MaxColors-1 {
		t.Errorf("overflow color landed in bucket %d, want %d", m.Colors[1].Color, MaxColors-1)
	}
	if len(m.Workers) != 1 {
		t.Fatalf("got %d worker stats, want 1", len(m.Workers))
	}
	if u := m.Workers[0].Utilization; u != 0.75 {
		t.Errorf("utilization = %g, want 0.75", u)
	}
	if m.Rebuilds != 2 || m.Faults != 1 || m.Rollbacks != 1 || m.Checkpoints != 1 {
		t.Errorf("counters = %d/%d/%d/%d", m.Rebuilds, m.Faults, m.Rollbacks, m.Checkpoints)
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.AddPhase(PhaseDensity, time.Microsecond)
				r.AddColor(g%4, time.Microsecond)
				r.AddWorker(g, time.Microsecond, time.Microsecond)
				r.IncRebuild()
			}
		}(g)
	}
	wg.Wait()
	m := r.Snapshot()
	if m.Density.Calls != 8*200 {
		t.Errorf("density calls = %d, want %d", m.Density.Calls, 8*200)
	}
	if m.Rebuilds != 8*200 {
		t.Errorf("rebuilds = %d, want %d", m.Rebuilds, 8*200)
	}
	if len(m.Workers) != 8 {
		t.Errorf("worker stats = %d, want 8", len(m.Workers))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRecorder()
	r.AddPhase(PhaseDensity, time.Second)
	r.AddColor(0, time.Second)
	r.AddWorker(0, time.Second, time.Second)
	r.IncRebuild()
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sdcmd_uptime_seconds`,
		`sdcmd_phase_seconds_total{phase="density"} 1`,
		`sdcmd_phase_calls_total{phase="density"} 1`,
		`sdcmd_color_seconds_total{color="0"} 1`,
		`sdcmd_worker_utilization{worker="0"} 0.5`,
		`sdcmd_rebuilds_total 1`,
		`sdcmd_faults_total 0`,
		"# TYPE sdcmd_phase_seconds_total counter",
		"# HELP sdcmd_rollbacks_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// errWriter fails after n bytes, to exercise the first-error capture.
type errWriter struct{ left int }

func (e *errWriter) Write(p []byte) (int, error) {
	if len(p) > e.left {
		n := e.left
		e.left = 0
		return n, fmt.Errorf("sink full")
	}
	e.left -= len(p)
	return len(p), nil
}

func TestWritePrometheusPropagatesWriteError(t *testing.T) {
	r := NewRecorder()
	if err := r.Snapshot().WritePrometheus(&errWriter{left: 10}); err == nil {
		t.Fatal("write error was swallowed")
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRecorder()
	r.AddPhase(PhaseForce, time.Second)
	srv, err := Serve("127.0.0.1:0", r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, `sdcmd_phase_seconds_total{phase="force"} 1`) {
		t.Errorf("/metrics missing force phase:\n%s", body)
	}

	body, ctype = get("/metrics?format=json")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("JSON content type %q", ctype)
	}
	var m Metrics
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("JSON metrics: %v", err)
	}
	if m.Force.Seconds != 1 {
		t.Errorf("JSON force seconds = %g, want 1", m.Force.Seconds)
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index unexpected:\n%.200s", body)
	}
}

// TestCloseWaitsForSlowScrape is the regression test for the graceful
// shutdown path: Close used to hard-close the listener, cutting
// in-flight /metrics responses mid-body. A scrape that is already
// inside the handler when Close begins must now complete with a full
// 200 response.
func TestCloseWaitsForSlowScrape(t *testing.T) {
	r := NewRecorder()
	r.AddPhase(PhaseForce, time.Second)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slowSnapshot := func() Metrics {
		once.Do(func() {
			close(entered)
			<-release
		})
		return r.Snapshot()
	}
	srv, err := Serve("127.0.0.1:0", slowSnapshot)
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		code int
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(body), code: resp.StatusCode, err: err}
	}()

	<-entered // the scrape is inside the handler now
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Give Shutdown a moment to begin, then let the handler finish; the
	// response must still make it out whole.
	time.Sleep(20 * time.Millisecond)
	close(release)

	res := <-got
	if res.err != nil {
		t.Fatalf("slow scrape failed during shutdown: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("slow scrape got status %d", res.code)
	}
	if !strings.Contains(res.body, `sdcmd_phase_seconds_total{phase="force"} 1`) {
		t.Errorf("scrape body truncated:\n%s", res.body)
	}
	if err := <-closed; err != nil {
		t.Errorf("graceful close: %v", err)
	}
}

func TestStreamer(t *testing.T) {
	r := NewRecorder()
	r.AddPhase(PhaseEmbed, time.Second)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s, err := StartStream(w, 5*time.Millisecond, r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var rec struct {
			Time string `json:"t"`
			Metrics
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if rec.Time == "" || rec.Embed.Seconds != 1 {
			t.Errorf("line %d: bad record %s", lines, sc.Text())
		}
	}
	if lines < 2 {
		t.Errorf("got %d stream lines, want >= 2 (ticks plus the final flush)", lines)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestStartStreamValidation(t *testing.T) {
	r := NewRecorder()
	if _, err := StartStream(nil, time.Second, r.Snapshot); err == nil {
		t.Error("nil writer accepted")
	}
	if _, err := StartStream(&bytes.Buffer{}, 0, r.Snapshot); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := StartStream(&bytes.Buffer{}, time.Second, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}
