package telemetry

import (
	"bytes"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// settleToGoroutineCount polls until the live goroutine count drops
// back to at most before, failing if it never settles.
func settleToGoroutineCount(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, want <= %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseLeaksNoGoroutines is the dynamic half of the
// goroutine-leak cross-validation (see internal/flow): after
// Server.Close returns, the listener's accept loop and any connection
// handlers must be gone. The static pass proves the same joins in
// TestRealRepoShutdownPathsProveClean.
func TestServerCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	r := NewRecorder()
	r.AddPhase(PhaseForce, time.Second)
	srv, err := Serve("127.0.0.1:0", r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		_ = srv.Close()
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	// Idle keep-alive client connections hold server-side handler
	// goroutines alive; release them before counting.
	http.DefaultClient.CloseIdleConnections()

	settleToGoroutineCount(t, before)
}

// TestStreamerCloseLeaksNoGoroutines asserts Streamer.Close joins the
// ticker goroutine rather than abandoning it.
func TestStreamerCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	r := NewRecorder()
	var buf bytes.Buffer
	s, err := StartStream(&buf, 5*time.Millisecond, r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	settleToGoroutineCount(t, before)
}
