// Package telemetry is the observability layer of the reproduction:
// per-phase timers for the three EAM force phases (§II.C), per-color
// sweep times and per-worker busy/barrier-wait accumulation for the SDC
// schedule, and the structural counters (neighbor rebuilds, guard
// faults/rollbacks/checkpoints) the experiments and the supervisor
// expose. The paper's whole evaluation separates "the running times of
// the calculations of the electron densities and forces" (§III.A);
// this package makes that separation observable on a live run.
//
// Design constraints:
//
//   - Allocation-free in the hot path: recording is a handful of atomic
//     adds on pre-sized arrays; spans are value types.
//   - Nil-safe: every method on a nil *Recorder is a no-op, so call
//     sites thread the recorder unconditionally and a disabled run pays
//     only a nil check.
//   - Snapshot-consistent enough for monitoring: Snapshot may run
//     concurrently with recording; each field is individually atomic
//     (no cross-field transaction, which monitoring does not need).
//
// The package deliberately holds the only time.Now calls of the
// instrumented kernels: force/strategy code creates Spans through the
// Recorder, so the kernel-determinism discipline (no wall clock in
// kernel packages) stays intact — a dead Span records nothing.
// Likewise sync/atomic and the listener/streamer goroutines live here
// under explicit sdclint allow-list entries: they are observability
// control plane, not reduction-strategy synchronization or worker
// parallelism.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one of the three phases of the EAM force
// calculation (§II.C).
type Phase int

// The phases, in execution order.
const (
	// PhaseDensity is phase 1: the electron-density scalar reduction.
	PhaseDensity Phase = iota
	// PhaseEmbed is phase 2: embedding energies and F'(ρ).
	PhaseEmbed
	// PhaseForce is phase 3: the force vector reduction.
	PhaseForce

	numPhases
)

// String names the phase as used in metric labels.
func (p Phase) String() string {
	switch p {
	case PhaseDensity:
		return "density"
	case PhaseEmbed:
		return "embed"
	case PhaseForce:
		return "force"
	}
	return "unknown"
}

// MaxColors bounds the per-color accumulators. The SDC decomposition
// uses 2^dim colors (≤ 8 for 3D); the headroom is for experimental
// colorings.
const MaxColors = 16

// Recorder accumulates telemetry. The zero value is NOT usable; build
// with NewRecorder. All methods are safe for concurrent use and are
// no-ops on a nil receiver.
type Recorder struct {
	start time.Time

	phaseNS    [numPhases]atomic.Int64
	phaseCalls [numPhases]atomic.Int64

	colorNS     [MaxColors]atomic.Int64
	colorSweeps [MaxColors]atomic.Int64

	rebuilds    atomic.Uint64
	faults      atomic.Uint64
	rollbacks   atomic.Uint64
	checkpoints atomic.Uint64

	// Worker accumulation is coarse (once per parallel region, not per
	// item), so a mutex-guarded grow-only set of slices suffices. tasks/
	// steals/stolen are the task-scheduler counters (Tasked strategy):
	// cell tasks executed, steal operations, tasks obtained by stealing.
	mu     sync.Mutex
	busyNS []int64
	waitNS []int64
	tasks  []int64
	steals []int64
	stolen []int64
}

// NewRecorder builds an empty recorder anchored at now.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// Span is an in-flight interval measurement. The zero Span is dead:
// Elapsed returns 0 and End* methods record nothing, which is how a nil
// Recorder disables timing without branches at the call site.
type Span struct {
	t0   time.Time
	live bool
}

// Span starts an interval measurement (dead when r is nil).
func (r *Recorder) Span() Span {
	if r == nil {
		return Span{}
	}
	return Span{t0: time.Now(), live: true}
}

// Elapsed returns the time since the span started (0 for a dead span).
func (s Span) Elapsed() time.Duration {
	if !s.live {
		return 0
	}
	return time.Since(s.t0)
}

// Live reports whether the span records anything.
func (s Span) Live() bool { return s.live }

// AddPhase accumulates one timed interval of phase p.
func (r *Recorder) AddPhase(p Phase, d time.Duration) {
	if r == nil || p < 0 || p >= numPhases {
		return
	}
	r.phaseNS[p].Add(int64(d))
	r.phaseCalls[p].Add(1)
}

// EndPhase closes a span started with Span and charges it to phase p.
func (r *Recorder) EndPhase(p Phase, s Span) {
	if !s.live {
		return
	}
	r.AddPhase(p, s.Elapsed())
}

// AddColor accumulates one color-sweep interval. Colors at or beyond
// MaxColors are folded into the last bucket rather than dropped.
func (r *Recorder) AddColor(c int, d time.Duration) {
	if r == nil || c < 0 {
		return
	}
	if c >= MaxColors {
		c = MaxColors - 1
	}
	r.colorNS[c].Add(int64(d))
	r.colorSweeps[c].Add(1)
}

// AddWorker accumulates one parallel region's busy and barrier-wait
// time for worker tid, growing the per-worker arrays as needed.
func (r *Recorder) AddWorker(tid int, busy, wait time.Duration) {
	if r == nil || tid < 0 {
		return
	}
	if busy < 0 {
		busy = 0
	}
	if wait < 0 {
		wait = 0
	}
	r.mu.Lock()
	for len(r.busyNS) <= tid {
		//lint:ignore hot-loop grows once to the worker count on first sight of each tid, then never again
		r.busyNS = append(r.busyNS, 0)
		//lint:ignore hot-loop grows once to the worker count on first sight of each tid, then never again
		r.waitNS = append(r.waitNS, 0)
	}
	r.busyNS[tid] += int64(busy)
	r.waitNS[tid] += int64(wait)
	r.mu.Unlock()
}

// AddWorkerTasks accumulates one task-scheduler sweep's counters for
// worker tid: cell tasks executed, steal operations performed, and
// tasks obtained by stealing.
func (r *Recorder) AddWorkerTasks(tid int, executed, steals, stolen int64) {
	if r == nil || tid < 0 {
		return
	}
	r.mu.Lock()
	for len(r.tasks) <= tid {
		//lint:ignore hot-loop grows once to the worker count on first sight of each tid, then never again
		r.tasks = append(r.tasks, 0)
		//lint:ignore hot-loop grows once to the worker count on first sight of each tid, then never again
		r.steals = append(r.steals, 0)
		//lint:ignore hot-loop grows once to the worker count on first sight of each tid, then never again
		r.stolen = append(r.stolen, 0)
	}
	r.tasks[tid] += executed
	r.steals[tid] += steals
	r.stolen[tid] += stolen
	r.mu.Unlock()
}

// IncRebuild counts one neighbor-list (re)build.
func (r *Recorder) IncRebuild() {
	if r != nil {
		r.rebuilds.Add(1)
	}
}

// IncFault counts one guard fault (invariant violation or integrator
// error caught by the supervisor).
func (r *Recorder) IncFault() {
	if r != nil {
		r.faults.Add(1)
	}
}

// IncRollback counts one successful guard rollback (recovery).
func (r *Recorder) IncRollback() {
	if r != nil {
		r.rollbacks.Add(1)
	}
}

// IncCheckpoint counts one atomic on-disk checkpoint.
func (r *Recorder) IncCheckpoint() {
	if r != nil {
		r.checkpoints.Add(1)
	}
}

// PhaseStat is the snapshot of one phase timer.
type PhaseStat struct {
	// Seconds is the accumulated wall time of the phase.
	Seconds float64 `json:"seconds"`
	// Calls is how many timed intervals were accumulated.
	Calls int64 `json:"calls"`
}

// ColorStat is the snapshot of one SDC color's sweep timer.
type ColorStat struct {
	// Color is the color index of the decomposition.
	Color int `json:"color"`
	// Seconds is the accumulated sweep time of the color.
	Seconds float64 `json:"seconds"`
	// Sweeps is how many color sweeps were accumulated.
	Sweeps int64 `json:"sweeps"`
}

// WorkerStat is the snapshot of one pool worker.
type WorkerStat struct {
	// Worker is the worker id (pool thread index).
	Worker int `json:"worker"`
	// BusySeconds is time spent executing region bodies.
	BusySeconds float64 `json:"busy_seconds"`
	// WaitSeconds is time spent at region barriers waiting for the
	// slowest worker — the §IV fork-join/imbalance cost, measured.
	WaitSeconds float64 `json:"wait_seconds"`
	// Utilization is busy/(busy+wait) in (0, 1]; 0 when the worker
	// never ran.
	Utilization float64 `json:"utilization"`
	// Tasks counts cell tasks this worker executed (Tasked strategy
	// only; 0 under barrier schedules).
	Tasks int64 `json:"tasks,omitempty"`
	// Steals counts steal operations this worker performed.
	Steals int64 `json:"steals,omitempty"`
	// Stolen counts tasks this worker obtained by stealing (one steal
	// operation claims half the victim's queue).
	Stolen int64 `json:"stolen,omitempty"`
}

// Metrics is a typed, JSON-serializable snapshot of a Recorder.
type Metrics struct {
	// UptimeSeconds is the wall time since the recorder was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Density, Embed and Force are the per-phase timers (§II.C).
	Density PhaseStat `json:"density"`
	Embed   PhaseStat `json:"embed"`
	Force   PhaseStat `json:"force"`
	// Colors holds per-color sweep times (SDC only; empty otherwise).
	Colors []ColorStat `json:"colors,omitempty"`
	// Workers holds per-worker busy/wait/utilization (parallel
	// strategies only; empty for serial).
	Workers []WorkerStat `json:"workers,omitempty"`
	// Rebuilds counts neighbor-list (re)builds.
	Rebuilds uint64 `json:"rebuilds"`
	// Faults, Rollbacks and Checkpoints count guard events (0 when
	// unguarded).
	Faults      uint64 `json:"faults"`
	Rollbacks   uint64 `json:"rollbacks"`
	Checkpoints uint64 `json:"checkpoints"`
}

// Phase returns the stat of phase p.
func (m Metrics) Phase(p Phase) PhaseStat {
	switch p {
	case PhaseDensity:
		return m.Density
	case PhaseEmbed:
		return m.Embed
	case PhaseForce:
		return m.Force
	}
	return PhaseStat{}
}

// PhaseSeconds returns the sum of the three phase timers — the
// instrumented share of the paper's measured force time.
func (m Metrics) PhaseSeconds() float64 {
	return m.Density.Seconds + m.Embed.Seconds + m.Force.Seconds
}

// Snapshot captures the current state. A nil recorder yields the zero
// Metrics.
func (r *Recorder) Snapshot() Metrics {
	if r == nil {
		return Metrics{}
	}
	m := Metrics{UptimeSeconds: time.Since(r.start).Seconds()}
	read := func(p Phase) PhaseStat {
		return PhaseStat{
			Seconds: time.Duration(r.phaseNS[p].Load()).Seconds(),
			Calls:   r.phaseCalls[p].Load(),
		}
	}
	m.Density = read(PhaseDensity)
	m.Embed = read(PhaseEmbed)
	m.Force = read(PhaseForce)
	for c := 0; c < MaxColors; c++ {
		sweeps := r.colorSweeps[c].Load()
		if sweeps == 0 {
			continue
		}
		m.Colors = append(m.Colors, ColorStat{
			Color:   c,
			Seconds: time.Duration(r.colorNS[c].Load()).Seconds(),
			Sweeps:  sweeps,
		})
	}
	r.mu.Lock()
	nw := len(r.busyNS)
	if len(r.tasks) > nw {
		nw = len(r.tasks)
	}
	for t := 0; t < nw; t++ {
		var busy, wait float64
		if t < len(r.busyNS) {
			busy = time.Duration(r.busyNS[t]).Seconds()
			wait = time.Duration(r.waitNS[t]).Seconds()
		}
		util := 0.0
		if busy+wait > 0 {
			util = busy / (busy + wait)
		}
		ws := WorkerStat{
			Worker: t, BusySeconds: busy, WaitSeconds: wait, Utilization: util,
		}
		if t < len(r.tasks) {
			ws.Tasks = r.tasks[t]
			ws.Steals = r.steals[t]
			ws.Stolen = r.stolen[t]
		}
		m.Workers = append(m.Workers, ws)
	}
	r.mu.Unlock()
	m.Rebuilds = r.rebuilds.Load()
	m.Faults = r.faults.Load()
	m.Rollbacks = r.rollbacks.Load()
	m.Checkpoints = r.checkpoints.Load()
	return m
}
