package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// promWriter accumulates exposition lines, remembering the first write
// failure so every emit call stays checked.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP/TYPE preamble of one metric family.
func (p *promWriter) header(name, kind, help string) {
	p.printf("# HELP %s %s\n", name, help)
	p.printf("# TYPE %s %s\n", name, kind)
}

// Row is one self-describing exposition row (an unlabeled family with a
// single sample) for services that append their own counters after a
// Metrics block — e.g. the sdcserve_* job and store counters.
type Row struct {
	// Name is the metric family name; Kind is "counter" or "gauge".
	Name, Kind, Help string
	Value            float64
}

// WriteRows renders rows in the Prometheus text exposition format with
// the same HELP/TYPE discipline as WritePrometheus, returning the first
// write error. Integral values render without a decimal point, so
// counters composed through here match hand-written %d output.
func WriteRows(w io.Writer, rows []Row) error {
	b := &promWriter{w: w}
	for _, r := range rows {
		b.header(r.Name, r.Kind, r.Help)
		b.printf("%s %g\n", r.Name, r.Value)
	}
	return b.err
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). Metric names are stable API; see
// DESIGN.md "Observability".
func (m Metrics) WritePrometheus(w io.Writer) error {
	b := &promWriter{w: w}
	b.header("sdcmd_uptime_seconds", "gauge", "Wall time since the recorder was created.")
	b.printf("sdcmd_uptime_seconds %g\n", m.UptimeSeconds)

	b.header("sdcmd_phase_seconds_total", "counter", "Accumulated wall time per EAM force phase.")
	for _, p := range []Phase{PhaseDensity, PhaseEmbed, PhaseForce} {
		b.printf("sdcmd_phase_seconds_total{phase=%q} %g\n", p.String(), m.Phase(p).Seconds)
	}
	b.header("sdcmd_phase_calls_total", "counter", "Timed intervals per EAM force phase.")
	for _, p := range []Phase{PhaseDensity, PhaseEmbed, PhaseForce} {
		b.printf("sdcmd_phase_calls_total{phase=%q} %d\n", p.String(), m.Phase(p).Calls)
	}

	if len(m.Colors) > 0 {
		b.header("sdcmd_color_seconds_total", "counter", "Accumulated SDC sweep time per color.")
		for _, c := range m.Colors {
			b.printf("sdcmd_color_seconds_total{color=\"%d\"} %g\n", c.Color, c.Seconds)
		}
		b.header("sdcmd_color_sweeps_total", "counter", "SDC color sweeps executed.")
		for _, c := range m.Colors {
			b.printf("sdcmd_color_sweeps_total{color=\"%d\"} %d\n", c.Color, c.Sweeps)
		}
	}

	if len(m.Workers) > 0 {
		b.header("sdcmd_worker_busy_seconds_total", "counter", "Time each pool worker spent executing region bodies.")
		for _, wk := range m.Workers {
			b.printf("sdcmd_worker_busy_seconds_total{worker=\"%d\"} %g\n", wk.Worker, wk.BusySeconds)
		}
		b.header("sdcmd_worker_wait_seconds_total", "counter", "Time each pool worker spent at region barriers.")
		for _, wk := range m.Workers {
			b.printf("sdcmd_worker_wait_seconds_total{worker=\"%d\"} %g\n", wk.Worker, wk.WaitSeconds)
		}
		b.header("sdcmd_worker_utilization", "gauge", "Busy fraction busy/(busy+wait) per pool worker.")
		for _, wk := range m.Workers {
			b.printf("sdcmd_worker_utilization{worker=\"%d\"} %g\n", wk.Worker, wk.Utilization)
		}
		anyTasks := false
		for _, wk := range m.Workers {
			if wk.Tasks != 0 || wk.Steals != 0 || wk.Stolen != 0 {
				anyTasks = true
				break
			}
		}
		if anyTasks {
			b.header("sdcmd_worker_tasks_total", "counter", "Cell tasks executed per worker (tasked strategy).")
			for _, wk := range m.Workers {
				b.printf("sdcmd_worker_tasks_total{worker=\"%d\"} %d\n", wk.Worker, wk.Tasks)
			}
			b.header("sdcmd_worker_steals_total", "counter", "Successful steal operations per worker (tasked strategy).")
			for _, wk := range m.Workers {
				b.printf("sdcmd_worker_steals_total{worker=\"%d\"} %d\n", wk.Worker, wk.Steals)
			}
			b.header("sdcmd_worker_stolen_tasks_total", "counter", "Tasks acquired by stealing per worker (tasked strategy).")
			for _, wk := range m.Workers {
				b.printf("sdcmd_worker_stolen_tasks_total{worker=\"%d\"} %d\n", wk.Worker, wk.Stolen)
			}
		}
	}

	b.header("sdcmd_rebuilds_total", "counter", "Neighbor-list (re)builds.")
	b.printf("sdcmd_rebuilds_total %d\n", m.Rebuilds)
	b.header("sdcmd_faults_total", "counter", "Guard faults caught (invariant violations and integrator errors).")
	b.printf("sdcmd_faults_total %d\n", m.Faults)
	b.header("sdcmd_rollbacks_total", "counter", "Guard rollbacks to a good snapshot.")
	b.printf("sdcmd_rollbacks_total %d\n", m.Rollbacks)
	b.header("sdcmd_checkpoints_total", "counter", "Atomic on-disk checkpoints written.")
	b.printf("sdcmd_checkpoints_total %d\n", m.Checkpoints)
	return b.err
}

// Handler serves /metrics: Prometheus text by default, JSON when the
// request asks for it (?format=json or an Accept header preferring
// application/json).
func Handler(snapshot func() Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		m := snapshot()
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(m); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := m.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// NewServeMux builds the diagnostic mux: /metrics (text + JSON) and the
// net/http/pprof endpoints under /debug/pprof/, wired explicitly so the
// binary never depends on http.DefaultServeMux.
func NewServeMux(snapshot func() Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(snapshot))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running diagnostics listener (metrics + pprof).
type Server struct {
	srv  *http.Server
	addr string

	mu   sync.Mutex
	serr error // first non-shutdown Serve error
	done chan struct{}
}

// Serve listens on addr (host:port; port 0 picks a free port) and
// serves NewServeMux(snapshot) until Close. The accept loop runs on its
// own goroutine — control plane, outside the pool by design.
func Serve(addr string, snapshot func() Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		srv:  &http.Server{Handler: NewServeMux(snapshot)},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serr = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.addr }

// closeGrace bounds how long Close waits for in-flight scrapes: long
// enough for a slow Prometheus scrape to finish rendering, short enough
// that a wedged client cannot hold a finished run hostage.
const closeGrace = 2 * time.Second

// Close stops the listener gracefully — in-flight /metrics scrapes get
// up to closeGrace to complete before the remaining connections are
// hard-closed — and reports the first serve failure, if any. A
// hard-close after the grace period is not itself an error: the run's
// data is intact, only a stuck client's response was cut short.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	// Bounded join: Shutdown/Close above stop the listener, which makes
	// Serve return and the accept-loop goroutine close(s.done); the
	// grace period caps the whole wait at closeGrace.
	//lint:ignore ctx-propagation join bounded by closeGrace — the accept loop exits once the listener stops
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.serr != nil {
		return s.serr
	}
	return err
}

// streamRecord is one JSONL line: a timestamp plus the full snapshot —
// the same sink style as the guard event log.
type streamRecord struct {
	Time string `json:"t"`
	Metrics
}

// Streamer periodically appends metric snapshots as JSON lines.
type Streamer struct {
	w        io.Writer
	snapshot func() Metrics

	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	werr error // first write failure; ends the stream, kept for Close
}

// StartStream emits one JSON line of metrics to w every interval, plus
// a final line at Close. Writes happen only on the streamer goroutine,
// so w needs no locking by the caller.
func StartStream(w io.Writer, every time.Duration, snapshot func() Metrics) (*Streamer, error) {
	if w == nil {
		return nil, errors.New("telemetry: nil stream writer")
	}
	if every <= 0 {
		return nil, fmt.Errorf("telemetry: stream interval %v must be positive", every)
	}
	if snapshot == nil {
		return nil, errors.New("telemetry: nil snapshot source")
	}
	s := &Streamer{w: w, snapshot: snapshot, stop: make(chan struct{}), done: make(chan struct{})}
	go s.run(every)
	return s, nil
}

func (s *Streamer) run(every time.Duration) {
	defer close(s.done)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if !s.emit() {
				return
			}
		case <-s.stop:
			s.emit() // final snapshot so short runs still record one line
			return
		}
	}
}

// emit writes one line; false stops the stream after a write failure
// (the in-memory recorder stays intact; only the sink is lost).
func (s *Streamer) emit() bool {
	rec := streamRecord{Time: time.Now().UTC().Format(time.RFC3339Nano), Metrics: s.snapshot()}
	b, err := json.Marshal(rec)
	if err == nil {
		b = append(b, '\n')
		_, err = s.w.Write(b)
	}
	if err != nil {
		s.mu.Lock()
		if s.werr == nil {
			s.werr = err
		}
		s.mu.Unlock()
		return false
	}
	return true
}

// Close stops the stream, writes a final snapshot line and returns the
// first write failure, if any.
func (s *Streamer) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	// Bounded join: close(s.stop) above makes run() take its stop case,
	// emit the final line and close(s.done) on the way out.
	//lint:ignore ctx-propagation join bounded by the stop channel just closed — run() exits its select promptly
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}
