package neighbor

import (
	"fmt"
	"sort"

	"sdcmd/internal/box"
	"sdcmd/internal/vec"
)

// List is a CSR Verlet neighbor list, the exact data layout of the
// paper's Figs. 1/2/7/8: Index is neighindex[], Len is neighlen[], and
// Neigh is neighlist[]. A half list stores each pair once (j > i) and
// relies on the reductions rho[j] += …, force[j] -= … the paper
// parallelizes; a full list stores both directions and is what the
// Redundant-Computations strategy consumes.
type List struct {
	// Half records whether each pair appears once (true) or twice.
	Half bool
	// Cutoff is the interaction cutoff rc the list was built for.
	Cutoff float64
	// Skin is the extra shell captured so the list survives some motion.
	Skin float64
	// Index[i] is the offset of atom i's neighbors in Neigh.
	Index []int32
	// Len[i] is atom i's neighbor count.
	Len []int32
	// Neigh holds the neighbor atom indices.
	Neigh []int32
}

// N returns the number of atoms the list covers.
func (l *List) N() int { return len(l.Index) }

// Pairs returns the number of stored (i,j) entries.
func (l *List) Pairs() int { return len(l.Neigh) }

// Neighbors returns atom i's neighbor slice (aliases internal storage).
func (l *List) Neighbors(i int) []int32 {
	s := l.Index[i]
	return l.Neigh[s : s+l.Len[i]]
}

// Stats summarizes a built list for workload accounting; the perf model
// feeds on these numbers.
type Stats struct {
	Atoms    int
	Pairs    int
	MinLen   int
	MaxLen   int
	MeanLen  float64
	HalfList bool
}

// Stats computes summary statistics.
func (l *List) Stats() Stats {
	st := Stats{Atoms: l.N(), Pairs: l.Pairs(), HalfList: l.Half, MinLen: int(^uint(0) >> 1)}
	if st.Atoms == 0 {
		st.MinLen = 0
		return st
	}
	for _, n := range l.Len {
		if int(n) < st.MinLen {
			st.MinLen = int(n)
		}
		if int(n) > st.MaxLen {
			st.MaxLen = int(n)
		}
	}
	st.MeanLen = float64(st.Pairs) / float64(st.Atoms)
	return st
}

// Validate performs structural checks: offsets in range, half-list
// ordering (j > i), no self pairs, no duplicates per atom. It is O(pairs
// log pairs) and intended for tests and debug runs.
func (l *List) Validate() error {
	n := l.N()
	if len(l.Len) != n {
		return fmt.Errorf("neighbor: Index/Len length mismatch %d vs %d", n, len(l.Len))
	}
	for i := 0; i < n; i++ {
		s, ln := l.Index[i], l.Len[i]
		if s < 0 || ln < 0 || int(s)+int(ln) > len(l.Neigh) {
			return fmt.Errorf("neighbor: atom %d CSR range [%d,%d) out of bounds", i, s, int(s)+int(ln))
		}
		nb := l.Neighbors(i)
		seen := make(map[int32]struct{}, len(nb))
		for _, j := range nb {
			if int(j) == i {
				return fmt.Errorf("neighbor: atom %d lists itself", i)
			}
			if j < 0 || int(j) >= n {
				return fmt.Errorf("neighbor: atom %d lists out-of-range neighbor %d", i, j)
			}
			if l.Half && int(j) < i {
				return fmt.Errorf("neighbor: half list atom %d lists smaller index %d", i, j)
			}
			if _, dup := seen[j]; dup {
				return fmt.Errorf("neighbor: atom %d lists %d twice", i, j)
			}
			seen[j] = struct{}{}
		}
	}
	return nil
}

// PairSet returns the canonical set of unordered pairs {min(i,j),
// max(i,j)} for comparison between builders (test helper).
func (l *List) PairSet() map[[2]int32]struct{} {
	set := make(map[[2]int32]struct{}, l.Pairs())
	for i := 0; i < l.N(); i++ {
		for _, j := range l.Neighbors(i) {
			a, b := int32(i), j
			if a > b {
				a, b = b, a
			}
			set[[2]int32{a, b}] = struct{}{}
		}
	}
	return set
}

// ToFull converts a half list into the equivalent full list (each pair
// stored in both directions). The Redundant-Computations strategy needs
// this: it doubles pair work in exchange for race-free writes, and its
// extra memory footprint is exactly the doubling the paper calls out.
func (l *List) ToFull() *List {
	if !l.Half {
		cp := *l
		cp.Index = append([]int32(nil), l.Index...)
		cp.Len = append([]int32(nil), l.Len...)
		cp.Neigh = append([]int32(nil), l.Neigh...)
		return &cp
	}
	n := l.N()
	counts := make([]int32, n)
	copy(counts, l.Len)
	for i := 0; i < n; i++ {
		for _, j := range l.Neighbors(i) {
			counts[j]++
		}
	}
	full := &List{
		Half:   false,
		Cutoff: l.Cutoff,
		Skin:   l.Skin,
		Index:  make([]int32, n),
		Len:    make([]int32, n),
		Neigh:  make([]int32, 2*l.Pairs()),
	}
	var off int32
	for i := 0; i < n; i++ {
		full.Index[i] = off
		off += counts[i]
	}
	cursor := append([]int32(nil), full.Index...)
	for i := 0; i < n; i++ {
		for _, j := range l.Neighbors(i) {
			full.Neigh[cursor[i]] = j
			cursor[i]++
			full.Neigh[cursor[j]] = int32(i)
			cursor[j]++
		}
	}
	for i := 0; i < n; i++ {
		full.Len[i] = cursor[i] - full.Index[i]
	}
	// Keep each atom's neighbors sorted for deterministic traversal.
	for i := 0; i < n; i++ {
		nb := full.Neighbors(i)
		sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
	}
	return full
}

// Builder configures neighbor-list construction.
type Builder struct {
	// Cutoff is the interaction range rc (> 0).
	Cutoff float64
	// Skin is the Verlet skin added to rc when searching (>= 0); the
	// list then stays valid until some atom moves more than Skin/2.
	Skin float64
	// Half selects half (j > i) or full lists.
	Half bool
}

// Build constructs the list with a cell grid (O(N)); when the box is
// too small for a 3-cells-per-axis grid it transparently falls back to
// the exact O(N²) search.
func (b Builder) Build(bx box.Box, pos []vec.Vec3) (*List, error) {
	if !(b.Cutoff > 0) {
		return nil, fmt.Errorf("neighbor: cutoff %g must be positive", b.Cutoff)
	}
	if b.Skin < 0 {
		return nil, fmt.Errorf("neighbor: skin %g must be non-negative", b.Skin)
	}
	reach := b.Cutoff + b.Skin
	if !bx.FitsCutoff(reach) {
		return nil, fmt.Errorf("neighbor: box %v too small for cutoff+skin %g (minimum image violated)", bx, reach)
	}
	grid, err := NewCellGrid(bx, pos, reach)
	if err != nil {
		return nil, err
	}
	if grid.Dims[0] < 3 || grid.Dims[1] < 3 || grid.Dims[2] < 3 {
		return b.BuildBruteForce(bx, pos)
	}
	return b.buildFromGrid(bx, pos, grid)
}

func (b Builder) buildFromGrid(bx box.Box, pos []vec.Vec3, grid *CellGrid) (*List, error) {
	n := len(pos)
	reach2 := (b.Cutoff + b.Skin) * (b.Cutoff + b.Skin)
	l := &List{
		Half:   b.Half,
		Cutoff: b.Cutoff,
		Skin:   b.Skin,
		Index:  make([]int32, n),
		Len:    make([]int32, n),
	}
	// Two passes: count then fill, so Neigh is exactly sized and the
	// CSR arrays are contiguous in atom order (the "regular array" form
	// §II.D's reordering produces).
	counts := make([]int32, n)
	scratch := make([]int32, 0, 64)
	forEachCandidate := func(i int) []int32 {
		scratch = scratch[:0]
		ci := grid.Unflatten(grid.CellOfAtom(i))
		pi := pos[i]
		grid.ForNeighborCells(ci, func(flat int) {
			for _, j32 := range grid.CellAtoms(flat) {
				j := int(j32)
				if j == i {
					continue
				}
				if b.Half && j < i {
					continue
				}
				if bx.Distance2(pi, pos[j]) < reach2 {
					scratch = append(scratch, j32)
				}
			}
		})
		return scratch
	}
	for i := 0; i < n; i++ {
		counts[i] = int32(len(forEachCandidate(i)))
	}
	var total int32
	for i := 0; i < n; i++ {
		l.Index[i] = total
		total += counts[i]
	}
	l.Neigh = make([]int32, total)
	for i := 0; i < n; i++ {
		nb := forEachCandidate(i)
		sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
		copy(l.Neigh[l.Index[i]:], nb)
		l.Len[i] = int32(len(nb))
	}
	return l, nil
}

// BuildBruteForce is the exact O(N²) construction used as the test
// oracle and as the small-box fallback.
func (b Builder) BuildBruteForce(bx box.Box, pos []vec.Vec3) (*List, error) {
	if !(b.Cutoff > 0) {
		return nil, fmt.Errorf("neighbor: cutoff %g must be positive", b.Cutoff)
	}
	if b.Skin < 0 {
		return nil, fmt.Errorf("neighbor: skin %g must be non-negative", b.Skin)
	}
	reach := b.Cutoff + b.Skin
	if !bx.FitsCutoff(reach) {
		return nil, fmt.Errorf("neighbor: box %v too small for cutoff+skin %g (minimum image violated)", bx, reach)
	}
	n := len(pos)
	reach2 := reach * reach
	nb := make([][]int32, n)
	for i := 0; i < n; i++ {
		start := 0
		if b.Half {
			start = i + 1
		}
		for j := start; j < n; j++ {
			if j == i {
				continue
			}
			if bx.Distance2(pos[i], pos[j]) < reach2 {
				nb[i] = append(nb[i], int32(j))
			}
		}
	}
	l := &List{Half: b.Half, Cutoff: b.Cutoff, Skin: b.Skin,
		Index: make([]int32, n), Len: make([]int32, n)}
	var total int32
	for i := 0; i < n; i++ {
		l.Index[i] = total
		total += int32(len(nb[i]))
	}
	l.Neigh = make([]int32, total)
	for i := 0; i < n; i++ {
		copy(l.Neigh[l.Index[i]:], nb[i])
		l.Len[i] = int32(len(nb[i]))
	}
	return l, nil
}

// MaxDisplacement2 returns the largest squared minimum-image
// displacement between two position snapshots; the MD driver rebuilds
// the list when this exceeds (Skin/2)².
func MaxDisplacement2(bx box.Box, old, cur []vec.Vec3) float64 {
	worst := 0.0
	for i := range cur {
		if d2 := bx.Distance2(cur[i], old[i]); d2 > worst {
			worst = d2
		}
	}
	return worst
}

// BuildParallel is Build with the candidate search parallelized over a
// worker pool (counts pass and fill pass are both per-atom-independent,
// so no synchronization is needed beyond the pool barriers). Results
// are identical to Build. The pool is only borrowed; nil falls back to
// the serial Build.
func (b Builder) BuildParallel(bx box.Box, pos []vec.Vec3, pool Parallelizer) (*List, error) {
	if pool == nil {
		return b.Build(bx, pos)
	}
	if !(b.Cutoff > 0) {
		return nil, fmt.Errorf("neighbor: cutoff %g must be positive", b.Cutoff)
	}
	if b.Skin < 0 {
		return nil, fmt.Errorf("neighbor: skin %g must be non-negative", b.Skin)
	}
	reach := b.Cutoff + b.Skin
	if !bx.FitsCutoff(reach) {
		return nil, fmt.Errorf("neighbor: box %v too small for cutoff+skin %g (minimum image violated)", bx, reach)
	}
	grid, err := NewCellGrid(bx, pos, reach)
	if err != nil {
		return nil, err
	}
	if grid.Dims[0] < 3 || grid.Dims[1] < 3 || grid.Dims[2] < 3 {
		return b.BuildBruteForce(bx, pos)
	}
	n := len(pos)
	reach2 := reach * reach
	l := &List{
		Half:   b.Half,
		Cutoff: b.Cutoff,
		Skin:   b.Skin,
		Index:  make([]int32, n),
		Len:    make([]int32, n),
	}
	candidates := func(i int, out []int32) []int32 {
		out = out[:0]
		ci := grid.Unflatten(grid.CellOfAtom(i))
		pi := pos[i]
		grid.ForNeighborCells(ci, func(flat int) {
			for _, j32 := range grid.CellAtoms(flat) {
				j := int(j32)
				if j == i || (b.Half && j < i) {
					continue
				}
				if bx.Distance2(pi, pos[j]) < reach2 {
					out = append(out, j32)
				}
			}
		})
		return out
	}
	counts := make([]int32, n)
	pool.ParallelFor(n, func(start, end, _ int) {
		scratch := make([]int32, 0, 64)
		for i := start; i < end; i++ {
			scratch = candidates(i, scratch)
			counts[i] = int32(len(scratch))
		}
	})
	var total int32
	for i := 0; i < n; i++ {
		l.Index[i] = total
		total += counts[i]
	}
	l.Neigh = make([]int32, total)
	pool.ParallelFor(n, func(start, end, _ int) {
		scratch := make([]int32, 0, 64)
		for i := start; i < end; i++ {
			scratch = candidates(i, scratch)
			sort.Slice(scratch, func(a, b int) bool { return scratch[a] < scratch[b] })
			//lint:ignore sdc-shared-write rows are disjoint by construction: Index is an exclusive prefix sum over counts, so [Index[i], Index[i]+counts[i]) never overlaps across i
			copy(l.Neigh[l.Index[i]:], scratch)
			l.Len[i] = int32(len(scratch))
		}
	})
	return l, nil
}

// Parallelizer is the worker-pool capability BuildParallel needs; the
// strategy.Pool satisfies it (declared here to avoid a dependency
// cycle).
type Parallelizer interface {
	ParallelFor(n int, body func(start, end, tid int))
}
