// Package neighbor builds the Verlet neighbor lists at the heart of the
// paper's force loops (the CSR arrays neighindex[], neighlen[],
// neighlist[] of Figs. 1/2/7/8), via a linked-cell grid so construction
// is O(N) instead of O(N²). A brute-force builder with identical
// semantics serves as the correctness oracle.
package neighbor

import (
	"fmt"

	"sdcmd/internal/box"
	"sdcmd/internal/vec"
)

// CellGrid bins atoms into cubic-ish cells at least `minCell` wide so
// all neighbors within the interaction range lie in the 27 surrounding
// cells. Atom membership is stored CSR-style (counting sort), which the
// reorder package also uses to derive its locality permutation.
type CellGrid struct {
	// Box is the periodic cell the grid tiles.
	Box box.Box
	// Dims is the number of cells along each axis (>= 1).
	Dims [3]int
	// MinCell is the requested minimum cell edge (usually rc + skin).
	MinCell float64

	// Start[c] .. Start[c+1] index Atoms for cell c (CSR).
	Start []int32
	// Atoms holds atom indices grouped by cell.
	Atoms []int32
	// cell[i] is the flat cell index of atom i.
	cell []int32
}

// NewCellGrid chooses the densest grid whose cells are at least minCell
// wide and bins pos into it. A degenerate request (minCell <= 0) is an
// error; an axis shorter than minCell simply gets one cell.
func NewCellGrid(bx box.Box, pos []vec.Vec3, minCell float64) (*CellGrid, error) {
	if !(minCell > 0) {
		return nil, fmt.Errorf("neighbor: minimum cell edge %g must be positive", minCell)
	}
	g := &CellGrid{Box: bx, MinCell: minCell}
	l := bx.Lengths()
	for d := 0; d < 3; d++ {
		n := int(l[d] / minCell)
		if n < 1 {
			n = 1
		}
		g.Dims[d] = n
	}
	g.rebin(pos)
	return g, nil
}

// NumCells returns the total cell count.
func (g *CellGrid) NumCells() int { return g.Dims[0] * g.Dims[1] * g.Dims[2] }

// rebin performs the counting sort of atoms into cells.
func (g *CellGrid) rebin(pos []vec.Vec3) {
	nc := g.NumCells()
	if cap(g.Start) >= nc+1 {
		g.Start = g.Start[:nc+1]
		for i := range g.Start {
			g.Start[i] = 0
		}
	} else {
		g.Start = make([]int32, nc+1)
	}
	if cap(g.Atoms) >= len(pos) {
		g.Atoms = g.Atoms[:len(pos)]
	} else {
		g.Atoms = make([]int32, len(pos))
	}
	if cap(g.cell) >= len(pos) {
		g.cell = g.cell[:len(pos)]
	} else {
		g.cell = make([]int32, len(pos))
	}

	for i, p := range pos {
		c := g.CellIndexOf(p)
		g.cell[i] = int32(c)
		g.Start[c+1]++
	}
	for c := 0; c < nc; c++ {
		g.Start[c+1] += g.Start[c]
	}
	cursor := make([]int32, nc)
	copy(cursor, g.Start[:nc])
	for i := range pos {
		c := g.cell[i]
		g.Atoms[cursor[c]] = int32(i)
		cursor[c]++
	}
}

// CellCoords returns the integer cell coordinates of a (wrapped or
// unwrapped) position, clamped into range.
func (g *CellGrid) CellCoords(p vec.Vec3) [3]int {
	p = g.Box.Wrap(p)
	f := g.Box.FracCoord(p)
	var c [3]int
	for d := 0; d < 3; d++ {
		c[d] = int(f[d] * float64(g.Dims[d]))
		if c[d] >= g.Dims[d] { // f == 1-eps rounding
			c[d] = g.Dims[d] - 1
		}
		if c[d] < 0 {
			c[d] = 0
		}
	}
	return c
}

// CellIndexOf returns the flat cell index of position p.
func (g *CellGrid) CellIndexOf(p vec.Vec3) int {
	c := g.CellCoords(p)
	return g.Flatten(c)
}

// Flatten converts cell coordinates to the flat index (x-major).
func (g *CellGrid) Flatten(c [3]int) int {
	return (c[0]*g.Dims[1]+c[1])*g.Dims[2] + c[2]
}

// Unflatten is the inverse of Flatten.
func (g *CellGrid) Unflatten(idx int) [3]int {
	z := idx % g.Dims[2]
	idx /= g.Dims[2]
	y := idx % g.Dims[1]
	x := idx / g.Dims[1]
	return [3]int{x, y, z}
}

// CellAtoms returns the atoms binned into flat cell c.
func (g *CellGrid) CellAtoms(c int) []int32 {
	return g.Atoms[g.Start[c]:g.Start[c+1]]
}

// CellOfAtom returns the flat cell index atom i was binned into.
func (g *CellGrid) CellOfAtom(i int) int { return int(g.cell[i]) }

// ForNeighborCells calls fn with the flat index of every cell in the
// 3×3×3 neighborhood of cell coordinates c, honoring periodic wrap on
// periodic axes and skipping out-of-range cells on open axes. When an
// axis has fewer than 3 cells, wrapped duplicates are suppressed so each
// neighbor cell is visited exactly once.
func (g *CellGrid) ForNeighborCells(c [3]int, fn func(flat int)) {
	var seen map[int]struct{}
	small := g.Dims[0] < 3 || g.Dims[1] < 3 || g.Dims[2] < 3
	if small {
		seen = make(map[int]struct{}, 27)
	}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				n := [3]int{c[0] + dx, c[1] + dy, c[2] + dz}
				ok := true
				for d := 0; d < 3; d++ {
					if n[d] < 0 || n[d] >= g.Dims[d] {
						if !g.Box.Periodic[d] {
							ok = false
							break
						}
						n[d] = ((n[d] % g.Dims[d]) + g.Dims[d]) % g.Dims[d]
					}
				}
				if !ok {
					continue
				}
				flat := g.Flatten(n)
				if small {
					if _, dup := seen[flat]; dup {
						continue
					}
					seen[flat] = struct{}{}
				}
				fn(flat)
			}
		}
	}
}
