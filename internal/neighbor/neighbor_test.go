package neighbor

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"sdcmd/internal/box"
	"sdcmd/internal/lattice"
	"sdcmd/internal/vec"
)

func randomPositions(n int, bx box.Box, seed int64) []vec.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	l := bx.Lengths()
	ps := make([]vec.Vec3, n)
	for i := range ps {
		ps[i] = bx.Lo.Add(vec.New(rng.Float64()*l[0], rng.Float64()*l[1], rng.Float64()*l[2]))
	}
	return ps
}

func TestCellGridValidation(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(10))
	if _, err := NewCellGrid(bx, nil, 0); err == nil {
		t.Error("minCell=0 accepted")
	}
	if _, err := NewCellGrid(bx, nil, -1); err == nil {
		t.Error("minCell<0 accepted")
	}
}

func TestCellGridDims(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.New(10, 7, 2))
	g, err := NewCellGrid(bx, nil, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dims != [3]int{5, 3, 1} {
		t.Errorf("Dims = %v", g.Dims)
	}
	if g.NumCells() != 15 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
}

func TestCellGridBinningComplete(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(9))
	pos := randomPositions(500, bx, 7)
	g, err := NewCellGrid(bx, pos, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for c := 0; c < g.NumCells(); c++ {
		for _, a := range g.CellAtoms(c) {
			if seen[a] {
				t.Fatalf("atom %d binned twice", a)
			}
			seen[a] = true
			// The atom must geometrically be in this cell.
			if g.CellIndexOf(pos[a]) != c {
				t.Fatalf("atom %d in cell %d but CellIndexOf says %d", a, c, g.CellIndexOf(pos[a]))
			}
			if g.CellOfAtom(int(a)) != c {
				t.Fatalf("CellOfAtom mismatch for %d", a)
			}
		}
	}
	if len(seen) != len(pos) {
		t.Errorf("binned %d atoms of %d", len(seen), len(pos))
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.New(12, 8, 4))
	g, _ := NewCellGrid(bx, nil, 1.0)
	for c := 0; c < g.NumCells(); c++ {
		if got := g.Flatten(g.Unflatten(c)); got != c {
			t.Fatalf("round trip %d -> %v -> %d", c, g.Unflatten(c), got)
		}
	}
}

func TestForNeighborCellsCount(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(10))
	g, _ := NewCellGrid(bx, nil, 2.0) // 5×5×5 periodic
	count := 0
	g.ForNeighborCells([3]int{2, 2, 2}, func(int) { count++ })
	if count != 27 {
		t.Errorf("interior neighborhood = %d cells, want 27", count)
	}
	// Periodic wrap at the corner still yields 27 distinct cells.
	seen := map[int]bool{}
	g.ForNeighborCells([3]int{0, 0, 0}, func(f int) { seen[f] = true })
	if len(seen) != 27 {
		t.Errorf("corner neighborhood = %d distinct cells, want 27", len(seen))
	}
}

func TestForNeighborCellsSmallGridNoDuplicates(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.New(4, 4, 20))
	g, _ := NewCellGrid(bx, nil, 2.0) // 2×2×10
	visits := map[int]int{}
	g.ForNeighborCells([3]int{0, 0, 5}, func(f int) { visits[f]++ })
	for c, n := range visits {
		if n > 1 {
			t.Errorf("cell %d visited %d times", c, n)
		}
	}
	// 2 wrapped x-cells × 2 wrapped y-cells × 3 z-cells = 12 distinct.
	if len(visits) != 12 {
		t.Errorf("distinct neighbor cells = %d, want 12", len(visits))
	}
}

func TestForNeighborCellsOpenBoundary(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(10))
	bx.Periodic = [3]bool{false, true, true}
	g, _ := NewCellGrid(bx, nil, 2.0)
	count := 0
	g.ForNeighborCells([3]int{0, 2, 2}, func(int) { count++ })
	if count != 18 { // 2×3×3: no wrap across the open x face
		t.Errorf("open-boundary neighborhood = %d, want 18", count)
	}
}

func TestBuilderValidation(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(10))
	pos := randomPositions(10, bx, 1)
	if _, err := (Builder{Cutoff: 0}).Build(bx, pos); err == nil {
		t.Error("cutoff=0 accepted")
	}
	if _, err := (Builder{Cutoff: 1, Skin: -0.1}).Build(bx, pos); err == nil {
		t.Error("negative skin accepted")
	}
	if _, err := (Builder{Cutoff: 6}).Build(bx, pos); err == nil {
		t.Error("cutoff violating minimum image accepted")
	}
	if _, err := (Builder{Cutoff: 0}).BuildBruteForce(bx, pos); err == nil {
		t.Error("brute force cutoff=0 accepted")
	}
	if _, err := (Builder{Cutoff: 1, Skin: -1}).BuildBruteForce(bx, pos); err == nil {
		t.Error("brute force negative skin accepted")
	}
	if _, err := (Builder{Cutoff: 6}).BuildBruteForce(bx, pos); err == nil {
		t.Error("brute force minimum-image violation accepted")
	}
}

func TestCellListMatchesBruteForce(t *testing.T) {
	for _, half := range []bool{false, true} {
		for _, seed := range []int64{1, 2, 3} {
			bx := box.MustNew(vec.Zero, vec.New(12, 10, 11))
			pos := randomPositions(400, bx, seed)
			b := Builder{Cutoff: 2.0, Skin: 0.3, Half: half}
			cell, err := b.Build(bx, pos)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := b.BuildBruteForce(bx, pos)
			if err != nil {
				t.Fatal(err)
			}
			cs, bs := cell.PairSet(), brute.PairSet()
			if len(cs) != len(bs) {
				t.Fatalf("half=%v seed=%d: %d pairs vs %d brute", half, seed, len(cs), len(bs))
			}
			for p := range bs {
				if _, ok := cs[p]; !ok {
					t.Fatalf("half=%v: missing pair %v", half, p)
				}
			}
			if err := cell.Validate(); err != nil {
				t.Fatalf("cell list invalid: %v", err)
			}
			if err := brute.Validate(); err != nil {
				t.Fatalf("brute list invalid: %v", err)
			}
		}
	}
}

func TestHalfListHalvesPairs(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(12))
	pos := randomPositions(300, bx, 9)
	half, err := Builder{Cutoff: 2, Half: true}.Build(bx, pos)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Builder{Cutoff: 2, Half: false}.Build(bx, pos)
	if err != nil {
		t.Fatal(err)
	}
	if full.Pairs() != 2*half.Pairs() {
		t.Errorf("full pairs %d != 2×half %d", full.Pairs(), half.Pairs())
	}
}

func TestBCCNeighborCount(t *testing.T) {
	// bcc with rc between 1st and 2nd shell: exactly 8 neighbors each.
	cfg := lattice.MustBuild(lattice.BCC, 5, 5, 5, 2.8665)
	rc := 2.6 // 1st shell 2.4824, 2nd 2.8665
	l, err := Builder{Cutoff: rc, Half: false}.Build(cfg.Box, cfg.Pos)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.MinLen != 8 || st.MaxLen != 8 {
		t.Errorf("bcc 1st shell count: min=%d max=%d, want 8", st.MinLen, st.MaxLen)
	}
	// rc between 2nd and 3rd shell: 8 + 6 = 14 neighbors.
	l2, err := Builder{Cutoff: 3.5, Half: false}.Build(cfg.Box, cfg.Pos)
	if err != nil {
		t.Fatal(err)
	}
	st2 := l2.Stats()
	if st2.MinLen != 14 || st2.MaxLen != 14 {
		t.Errorf("bcc 2-shell count: min=%d max=%d, want 14", st2.MinLen, st2.MaxLen)
	}
}

func TestToFull(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(12))
	pos := randomPositions(200, bx, 11)
	half, err := Builder{Cutoff: 2.2, Half: true}.Build(bx, pos)
	if err != nil {
		t.Fatal(err)
	}
	full := half.ToFull()
	if full.Half {
		t.Error("ToFull result still marked half")
	}
	if full.Pairs() != 2*half.Pairs() {
		t.Errorf("ToFull pairs %d, want %d", full.Pairs(), 2*half.Pairs())
	}
	if err := full.Validate(); err != nil {
		t.Fatalf("ToFull invalid: %v", err)
	}
	// Same unordered pair set.
	hs, fs := half.PairSet(), full.PairSet()
	if len(hs) != len(fs) {
		t.Fatalf("pair sets differ: %d vs %d", len(hs), len(fs))
	}
	for p := range hs {
		if _, ok := fs[p]; !ok {
			t.Fatalf("pair %v lost in ToFull", p)
		}
	}
	// ToFull of a full list is a deep copy.
	cp := full.ToFull()
	cp.Neigh[0] = -99
	if full.Neigh[0] == -99 {
		t.Error("ToFull of full list must deep-copy")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(12))
	pos := randomPositions(50, bx, 13)
	mk := func() *List {
		l, err := Builder{Cutoff: 3, Half: true}.Build(bx, pos)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l := mk()
	if l.Pairs() == 0 {
		t.Fatal("test needs some pairs")
	}

	c := mk()
	c.Neigh[0] = int32(999)
	if c.Validate() == nil {
		t.Error("out-of-range neighbor not caught")
	}

	c = mk()
	// Find an atom with a neighbor and make it list itself.
	for i := 0; i < c.N(); i++ {
		if c.Len[i] > 0 {
			c.Neigh[c.Index[i]] = int32(i)
			break
		}
	}
	if c.Validate() == nil {
		t.Error("self pair not caught")
	}

	c = mk()
	for i := 0; i < c.N(); i++ {
		if c.Len[i] >= 2 {
			c.Neigh[c.Index[i]+1] = c.Neigh[c.Index[i]]
			break
		}
	}
	if c.Validate() == nil {
		t.Error("duplicate neighbor not caught")
	}

	c = mk()
	c.Index[0] = -1
	if c.Validate() == nil {
		t.Error("negative offset not caught")
	}

	c = mk()
	c.Len = c.Len[:len(c.Len)-1]
	if c.Validate() == nil {
		t.Error("length mismatch not caught")
	}

	c = mk()
	// half list with j < i: give the last atom a small neighbor.
	last := c.N() - 1
	for i := last; i >= 0; i-- {
		if c.Len[i] > 0 && int(c.Neigh[c.Index[i]]) > 0 && i > 0 {
			c.Neigh[c.Index[i]] = 0
			_ = i
			break
		}
	}
	_ = c.Validate() // may or may not trip depending on which atom; no assertion
}

func TestSkinExpandsList(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(15))
	pos := randomPositions(400, bx, 17)
	noSkin, _ := Builder{Cutoff: 2}.Build(bx, pos)
	withSkin, _ := Builder{Cutoff: 2, Skin: 0.5}.Build(bx, pos)
	if withSkin.Pairs() <= noSkin.Pairs() {
		t.Errorf("skin did not expand list: %d vs %d", withSkin.Pairs(), noSkin.Pairs())
	}
	if withSkin.Skin != 0.5 || withSkin.Cutoff != 2 {
		t.Error("builder parameters not recorded")
	}
}

func TestSmallBoxFallsBackToBruteForce(t *testing.T) {
	// Box fits the cutoff (edges >= 2rc) but yields < 3 cells per axis,
	// forcing the brute-force fallback; results must still be exact.
	bx := box.MustNew(vec.Zero, vec.Splat(4.2))
	pos := randomPositions(60, bx, 19)
	b := Builder{Cutoff: 2.0, Half: true}
	got, err := b.Build(bx, pos)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := b.BuildBruteForce(bx, pos)
	gs, ws := got.PairSet(), want.PairSet()
	if len(gs) != len(ws) {
		t.Fatalf("fallback pairs %d, want %d", len(gs), len(ws))
	}
}

// TestToFullPairAccounting pins the symmetrization bookkeeping the RC
// strategy's cost model rides on: ToFull stores every half pair in both
// directions (the make([]int32, 2*l.Pairs()) sizing), Stats().Pairs
// agrees with Pairs() on both list shapes, and the CSR Len rows sum to
// the same total — so a reducer reporting PairWork() from either list
// counts exactly the visits one sweep performs.
func TestToFullPairAccounting(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(12))
	pos := randomPositions(250, bx, 11)
	half, err := Builder{Cutoff: 2.5, Skin: 0.5, Half: true}.Build(bx, pos)
	if err != nil {
		t.Fatal(err)
	}
	full := half.ToFull()
	if err := full.Validate(); err != nil {
		t.Fatalf("symmetrized list invalid: %v", err)
	}
	if full.Half {
		t.Error("ToFull result still marked half")
	}
	if full.Pairs() != 2*half.Pairs() {
		t.Errorf("symmetrized pairs %d, want 2x%d", full.Pairs(), half.Pairs())
	}
	if full.Cutoff != half.Cutoff || full.Skin != half.Skin {
		t.Errorf("ToFull dropped build parameters: %g/%g vs %g/%g",
			full.Cutoff, full.Skin, half.Cutoff, half.Skin)
	}
	for name, l := range map[string]*List{"half": half, "full": full} {
		st := l.Stats()
		if st.Pairs != l.Pairs() {
			t.Errorf("%s: Stats.Pairs %d != Pairs() %d", name, st.Pairs, l.Pairs())
		}
		if st.HalfList != l.Half {
			t.Errorf("%s: Stats.HalfList %v != Half %v", name, st.HalfList, l.Half)
		}
		sum := 0
		for _, n := range l.Len {
			sum += int(n)
		}
		if sum != l.Pairs() {
			t.Errorf("%s: Len rows sum to %d, Pairs() says %d", name, sum, l.Pairs())
		}
	}
	// Both shapes describe the same physical pair set.
	hs, fs := half.PairSet(), full.PairSet()
	if len(hs) != len(fs) {
		t.Fatalf("pair sets differ: half %d, full %d", len(hs), len(fs))
	}
	for p := range hs {
		if _, ok := fs[p]; !ok {
			t.Fatalf("pair %v missing from symmetrized list", p)
		}
	}
}

// TestToFullDeepCopy: both ToFull branches (symmetrize a half list,
// clone an already-full list) must return storage independent of the
// receiver — a shared backing array would let one consumer's mutation
// corrupt another's traversal.
func TestToFullDeepCopy(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(12))
	pos := randomPositions(120, bx, 13)
	for _, halfIn := range []bool{true, false} {
		src, err := Builder{Cutoff: 2.5, Half: halfIn}.Build(bx, pos)
		if err != nil {
			t.Fatal(err)
		}
		wantIndex := append([]int32(nil), src.Index...)
		wantLen := append([]int32(nil), src.Len...)
		wantNeigh := append([]int32(nil), src.Neigh...)
		cp := src.ToFull()
		for i := range cp.Index {
			cp.Index[i] = -7
		}
		for i := range cp.Len {
			cp.Len[i] = -7
		}
		for i := range cp.Neigh {
			cp.Neigh[i] = -7
		}
		for i := range src.Index {
			if src.Index[i] != wantIndex[i] || src.Len[i] != wantLen[i] {
				t.Fatalf("half=%v: mutating the copy changed the source CSR arrays", halfIn)
			}
		}
		for i := range src.Neigh {
			if src.Neigh[i] != wantNeigh[i] {
				t.Fatalf("half=%v: mutating the copy changed the source Neigh", halfIn)
			}
		}
	}
}

func TestStatsEmpty(t *testing.T) {
	l := &List{}
	st := l.Stats()
	if st.Atoms != 0 || st.Pairs != 0 || st.MinLen != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestMaxDisplacement2(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(10))
	old := []vec.Vec3{{1, 1, 1}, {5, 5, 5}}
	cur := []vec.Vec3{{1, 1, 1.5}, {5, 5.2, 5}}
	got := MaxDisplacement2(bx, old, cur)
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("MaxDisplacement2 = %g, want 0.25", got)
	}
	// Across the periodic boundary the displacement is the short way.
	old2 := []vec.Vec3{{0.1, 0, 0}}
	cur2 := []vec.Vec3{{9.9, 0, 0}}
	if d := MaxDisplacement2(bx, old2, cur2); math.Abs(d-0.04) > 1e-9 {
		t.Errorf("periodic displacement² = %g, want 0.04", d)
	}
}

func TestNeighborsSorted(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(12))
	pos := randomPositions(200, bx, 23)
	l, _ := Builder{Cutoff: 2.5, Half: true}.Build(bx, pos)
	for i := 0; i < l.N(); i++ {
		nb := l.Neighbors(i)
		for k := 1; k < len(nb); k++ {
			if nb[k-1] >= nb[k] {
				t.Fatalf("atom %d neighbors not sorted: %v", i, nb)
			}
		}
	}
}

// fakePool implements Parallelizer with plain goroutines.
type fakePool struct{ threads int }

func (p fakePool) ParallelFor(n int, body func(start, end, tid int)) {
	var wg sync.WaitGroup
	chunk := (n + p.threads - 1) / p.threads
	for t := 0; t < p.threads; t++ {
		start := t * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(s, e, tid int) {
			defer wg.Done()
			body(s, e, tid)
		}(start, end, t)
	}
	wg.Wait()
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.New(14, 12, 13))
	pos := randomPositions(800, bx, 31)
	for _, half := range []bool{true, false} {
		b := Builder{Cutoff: 2.2, Skin: 0.4, Half: half}
		want, err := b.Build(bx, pos)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.BuildParallel(bx, pos, fakePool{threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got.Pairs() != want.Pairs() {
			t.Fatalf("half=%v: %d pairs vs %d", half, got.Pairs(), want.Pairs())
		}
		for i := 0; i < got.N(); i++ {
			gn, wn := got.Neighbors(i), want.Neighbors(i)
			if len(gn) != len(wn) {
				t.Fatalf("half=%v atom %d: %d vs %d neighbors", half, i, len(gn), len(wn))
			}
			for k := range gn {
				if gn[k] != wn[k] {
					t.Fatalf("half=%v atom %d neighbor %d: %d vs %d", half, i, k, gn[k], wn[k])
				}
			}
		}
	}
}

func TestBuildParallelNilPoolFallsBack(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(12))
	pos := randomPositions(100, bx, 3)
	b := Builder{Cutoff: 2, Half: true}
	got, err := b.BuildParallel(bx, pos, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := b.Build(bx, pos)
	if got.Pairs() != want.Pairs() {
		t.Error("nil-pool fallback differs")
	}
}

func TestBuildParallelValidation(t *testing.T) {
	bx := box.MustNew(vec.Zero, vec.Splat(12))
	pos := randomPositions(20, bx, 3)
	p := fakePool{threads: 2}
	if _, err := (Builder{Cutoff: 0}).BuildParallel(bx, pos, p); err == nil {
		t.Error("cutoff=0 accepted")
	}
	if _, err := (Builder{Cutoff: 2, Skin: -1}).BuildParallel(bx, pos, p); err == nil {
		t.Error("negative skin accepted")
	}
	if _, err := (Builder{Cutoff: 7}).BuildParallel(bx, pos, p); err == nil {
		t.Error("min-image violation accepted")
	}
	// Small box: brute-force fallback still correct.
	small := box.MustNew(vec.Zero, vec.Splat(4.2))
	spos := randomPositions(40, small, 5)
	got, err := (Builder{Cutoff: 2, Half: true}).BuildParallel(small, spos, p)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := (Builder{Cutoff: 2, Half: true}).BuildBruteForce(small, spos)
	if got.Pairs() != want.Pairs() {
		t.Error("small-box fallback differs")
	}
}
