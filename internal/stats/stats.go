// Package stats provides the small timing and summary-statistics
// helpers the experiment harness uses: repeated-measurement summaries,
// speedup computation and fixed-width table formatting support.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Summary condenses repeated measurements.
type Summary struct {
	N              int
	Min, Max, Mean float64
	Median         float64
	StdDev         float64
}

// Summarize computes summary statistics; an empty input yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if n > 1 {
		s.StdDev = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// Speedup returns serial/parallel, guarding against nonsense inputs.
func Speedup(serial, parallel time.Duration) (float64, error) {
	if serial <= 0 || parallel <= 0 {
		return 0, fmt.Errorf("stats: durations must be positive (serial=%v, parallel=%v)", serial, parallel)
	}
	return float64(serial) / float64(parallel), nil
}

// Efficiency returns speedup/threads.
func Efficiency(speedup float64, threads int) (float64, error) {
	if threads < 1 {
		return 0, fmt.Errorf("stats: threads %d must be >= 1", threads)
	}
	if speedup < 0 {
		return 0, fmt.Errorf("stats: negative speedup %g", speedup)
	}
	return speedup / float64(threads), nil
}

// Timer measures wall-clock intervals with the monotonic clock (the
// role gettimeofday() plays in the paper's §III.A). It is NOT safe for
// concurrent use; wrap timing shared across goroutines in SafeTimer.
type Timer struct {
	start   time.Time
	elapsed time.Duration
	running bool
}

// Start begins (or resumes) timing.
func (t *Timer) Start() {
	if !t.running {
		t.start = time.Now()
		t.running = true
	}
}

// Stop pauses timing and accumulates the interval.
func (t *Timer) Stop() {
	if t.running {
		t.elapsed += time.Since(t.start)
		t.running = false
	}
}

// Elapsed returns the accumulated time (including a running interval).
func (t *Timer) Elapsed() time.Duration {
	if t.running {
		return t.elapsed + time.Since(t.start)
	}
	return t.elapsed
}

// Reset zeroes the timer and stops it, clearing any start mark so a
// later Start begins a fresh interval.
func (t *Timer) Reset() {
	t.start = time.Time{}
	t.elapsed = 0
	t.running = false
}

// SafeTimer is a mutex-guarded Timer with the same API, safe for
// concurrent Start/Stop/Elapsed/Reset from multiple goroutines.
type SafeTimer struct {
	mu sync.Mutex
	t  Timer
}

// Start begins (or resumes) timing.
func (s *SafeTimer) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.Start()
}

// Stop pauses timing and accumulates the interval.
func (s *SafeTimer) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.Stop()
}

// Elapsed returns the accumulated time (including a running interval).
func (s *SafeTimer) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Elapsed()
}

// Reset zeroes the timer and stops it.
func (s *SafeTimer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.Reset()
}

// Time runs fn and returns its wall-clock duration.
func Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
