package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %g", s.Mean)
	}
	if math.Abs(s.StdDev-2.138) > 0.001 { // sample stddev
		t.Errorf("stddev = %g", s.StdDev)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %g", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("median = %g", s.Median)
	}
	if s.StdDev == 0 {
		t.Error("stddev of spread data must be > 0")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Min != 3 || s.Max != 3 || s.Mean != 3 || s.Median != 3 || s.StdDev != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			xs[i] = math.Mod(x, 1e6) // keep sums finite
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	s, err := Speedup(10*time.Second, 2*time.Second)
	if err != nil || s != 5 {
		t.Errorf("speedup = %g, %v", s, err)
	}
	if _, err := Speedup(0, time.Second); err == nil {
		t.Error("zero serial accepted")
	}
	if _, err := Speedup(time.Second, 0); err == nil {
		t.Error("zero parallel accepted")
	}
}

func TestEfficiency(t *testing.T) {
	e, err := Efficiency(12, 16)
	if err != nil || e != 0.75 {
		t.Errorf("efficiency = %g, %v", e, err)
	}
	if _, err := Efficiency(1, 0); err == nil {
		t.Error("0 threads accepted")
	}
	if _, err := Efficiency(-1, 4); err == nil {
		t.Error("negative speedup accepted")
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(5 * time.Millisecond)
	tm.Stop()
	first := tm.Elapsed()
	if first < 4*time.Millisecond {
		t.Errorf("timer measured %v, want >= ~5ms", first)
	}
	// Accumulation across Start/Stop.
	tm.Start()
	time.Sleep(5 * time.Millisecond)
	tm.Stop()
	if tm.Elapsed() <= first {
		t.Error("timer did not accumulate")
	}
	// Double Start/Stop are no-ops.
	tm.Start()
	tm.Start()
	tm.Stop()
	tm.Stop()
	tm.Reset()
	if tm.Elapsed() != 0 {
		t.Error("reset failed")
	}
}

func TestTimerRunningElapsed(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(2 * time.Millisecond)
	if tm.Elapsed() <= 0 {
		t.Error("running timer must report progress")
	}
	tm.Stop()
}

func TestTimeFunc(t *testing.T) {
	d := Time(func() { time.Sleep(3 * time.Millisecond) })
	if d < 2*time.Millisecond {
		t.Errorf("Time measured %v", d)
	}
}
