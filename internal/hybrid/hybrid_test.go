package hybrid

import (
	"math"
	"sync"
	"testing"

	"sdcmd/internal/force"
	"sdcmd/internal/lattice"
	"sdcmd/internal/md"
	"sdcmd/internal/strategy"
	"sdcmd/internal/vec"
)

// globalSystem builds the shared test configuration: a jittered bcc-Fe
// crystal with Maxwell-Boltzmann velocities.
func globalSystem(t *testing.T, cells int, temp float64) *md.System {
	t.Helper()
	cfg := lattice.MustBuild(lattice.BCC, cells, cells, cells, lattice.FeLatticeConstant)
	cfg.Jitter(0.05, 21)
	sys := md.FromLattice(cfg)
	if err := sys.InitVelocities(temp, 31); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCommValidation(t *testing.T) {
	if _, err := NewComm(0); err == nil {
		t.Error("0 ranks accepted")
	}
	c, err := NewComm(3)
	if err != nil || c.Ranks() != 3 {
		t.Fatalf("NewComm: %v", err)
	}
}

func TestCommCollectives(t *testing.T) {
	c, err := NewComm(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	sums := make([]float64, 4)
	maxs := make([]float64, 4)
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sums[id] = c.AllReduceSum(id, float64(id+1))
			maxs[id] = c.AllReduceMax(id, float64((id*7)%5))
			c.Barrier(id)
		}(id)
	}
	wg.Wait()
	for id := 0; id < 4; id++ {
		if sums[id] != 10 {
			t.Errorf("rank %d sum = %g, want 10", id, sums[id])
		}
		if maxs[id] != 4 { // values 0,2,4,1
			t.Errorf("rank %d max = %g, want 4", id, maxs[id])
		}
	}
}

func TestCommSingleRankCollectives(t *testing.T) {
	c, _ := NewComm(1)
	if c.AllReduceSum(0, 3.5) != 3.5 || c.AllReduceMax(0, 2.5) != 2.5 {
		t.Error("single-rank collectives must be identity")
	}
	c.Barrier(0) // must not block
}

func TestNewSimulatorValidation(t *testing.T) {
	sys := globalSystem(t, 6, 100)
	good := DefaultConfig()
	cases := []func(*Config){
		func(c *Config) { c.Pot = nil },
		func(c *Config) { c.Ranks = 1 },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.Skin = -1 },
		func(c *Config) { c.Mass = 0 },
		func(c *Config) { c.Strategy = strategy.CS },
		func(c *Config) { c.Strategy = strategy.SDC; c.ThreadsPerRank = 0 },
		func(c *Config) { c.Ranks = 64 }, // slab thinner than reach
	}
	for i, mut := range cases {
		cfg := good
		mut(&cfg)
		if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel[:3], good); err == nil {
		t.Error("mismatched velocities accepted")
	}
	open := sys.Box
	open.Periodic[0] = false
	if _, err := NewSimulator(open, sys.Pos, sys.Vel, good); err == nil {
		t.Error("non-periodic box accepted")
	}
}

func TestInitialForcesMatchGlobalReference(t *testing.T) {
	sys := globalSystem(t, 6, 0)
	wantF, wantTotal, _, _ := force.Reference(DefaultConfig().Pot, sys.Box, sys.Pos)

	for _, tc := range []struct {
		ranks   int
		strat   strategy.Kind
		threads int
	}{
		{2, strategy.Serial, 1},
		{3, strategy.Serial, 1},
		{2, strategy.SDC, 2},
	} {
		cfg := DefaultConfig()
		cfg.Ranks = tc.ranks
		cfg.Strategy = tc.strat
		cfg.ThreadsPerRank = tc.threads
		sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
		if err != nil {
			t.Fatalf("ranks=%d: %v", tc.ranks, err)
		}
		_, _, frc := sim.Gather()
		for i := range wantF {
			if !frc[i].ApproxEqual(wantF[i], 1e-9*(1+wantF[i].Norm())) {
				t.Fatalf("ranks=%d %v: force[%d] = %v, want %v", tc.ranks, tc.strat, i, frc[i], wantF[i])
			}
		}
		if pe := sim.PotentialEnergy(); math.Abs(pe-wantTotal) > 1e-8*(1+math.Abs(wantTotal)) {
			t.Errorf("ranks=%d: PE = %g, want %g", tc.ranks, pe, wantTotal)
		}
		if sim.N() != sys.N() {
			t.Errorf("ranks=%d: N = %d, want %d", tc.ranks, sim.N(), sys.N())
		}
		sim.Close()
	}
}

func TestTrajectoryMatchesSingleDomain(t *testing.T) {
	// The hybrid run must track the shared-memory md.Simulator: same
	// physics, only the parallelization differs.
	sys := globalSystem(t, 6, 120)
	ref := sys.Clone()
	mcfg := md.DefaultConfig()
	refSim, err := md.NewSimulator(ref, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer refSim.Close()
	if err := refSim.Step(20); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Ranks = 3
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Step(20); err != nil {
		t.Fatal(err)
	}
	pos, _, _ := sim.Gather()
	for i := range pos {
		d := sys.Box.MinImage(pos[i], ref.Pos[i]).Norm()
		if d > 1e-7 {
			t.Fatalf("atom %d diverged by %g Å after 20 steps", i, d)
		}
	}
	if sim.StepCount() != 20 {
		t.Errorf("StepCount = %d", sim.StepCount())
	}
}

func TestHybridEnergyConservation(t *testing.T) {
	sys := globalSystem(t, 6, 150)
	cfg := DefaultConfig()
	cfg.Ranks = 2
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	e0 := sim.TotalEnergy()
	if err := sim.Step(100); err != nil {
		t.Fatal(err)
	}
	e1 := sim.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 1e-4 {
		t.Errorf("hybrid NVE drift %g (E %g -> %g)", drift, e0, e1)
	}
}

func TestMigrationPreservesAtoms(t *testing.T) {
	// Hot system + tiny skin: frequent rebuilds and real migration.
	sys := globalSystem(t, 6, 1500)
	cfg := DefaultConfig()
	cfg.Ranks = 3
	cfg.Skin = 0.15
	cfg.Dt = 2e-3
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Step(60); err != nil {
		t.Fatal(err)
	}
	if sim.N() != sys.N() {
		t.Fatalf("atoms lost: %d vs %d", sim.N(), sys.N())
	}
	// Every global id present exactly once.
	seen := make([]bool, sys.N())
	for _, r := range sim.ranks {
		for i := 0; i < r.nOwned; i++ {
			g := r.gid[i]
			if seen[g] {
				t.Fatalf("atom %d owned twice", g)
			}
			seen[g] = true
			// Owned atoms sit inside their rank's slab (post-rebuild
			// drift is bounded by skin/2; we just rebuilt-or-not, so
			// allow that slack).
			x := sys.Box.Wrap(r.pos[i])[0]
			if x < r.slabLo-cfg.Skin && x > r.slabHi+cfg.Skin {
				t.Fatalf("atom %d at x=%g outside slab [%g, %g]", g, x, r.slabLo, r.slabHi)
			}
		}
	}
	for g, ok := range seen {
		if !ok {
			t.Fatalf("atom %d vanished", g)
		}
	}
	loads := sim.RankLoads()
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != sys.N() {
		t.Errorf("RankLoads sum %d != %d", total, sys.N())
	}
	// Forces after all that churn still match a fresh reference.
	pos, _, frc := sim.Gather()
	wantF, _, _, _ := force.Reference(cfg.Pot, sys.Box, pos)
	for i := range frc {
		if !frc[i].ApproxEqual(wantF[i], 1e-6*(1+wantF[i].Norm())) {
			t.Fatalf("post-migration force[%d] = %v, want %v", i, frc[i], wantF[i])
		}
	}
}

func TestHybridSDCMatchesHybridSerial(t *testing.T) {
	sysA := globalSystem(t, 6, 100)
	sysB := sysA.Clone()

	run := func(sys *md.System, strat strategy.Kind, threads int) []vec.Vec3 {
		cfg := DefaultConfig()
		cfg.Ranks = 2
		cfg.Strategy = strat
		cfg.ThreadsPerRank = threads
		sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		if err := sim.Step(15); err != nil {
			t.Fatal(err)
		}
		pos, _, _ := sim.Gather()
		return pos
	}
	pa := run(sysA, strategy.Serial, 1)
	pb := run(sysB, strategy.SDC, 3)
	for i := range pa {
		if d := sysA.Box.MinImage(pa[i], pb[i]).Norm(); d > 1e-8 {
			t.Fatalf("SDC-in-rank trajectory diverged at atom %d by %g", i, d)
		}
	}
}

func TestGatherShapes(t *testing.T) {
	sys := globalSystem(t, 6, 50)
	cfg := DefaultConfig()
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	pos, vel, frc := sim.Gather()
	if len(pos) != sys.N() || len(vel) != sys.N() || len(frc) != sys.N() {
		t.Error("Gather shapes wrong")
	}
	if sim.Temperature() <= 0 {
		t.Error("temperature must be positive")
	}
}

func TestHybridThermostat(t *testing.T) {
	sys := globalSystem(t, 6, 50)
	cfg := DefaultConfig()
	cfg.Ranks = 2
	cfg.ThermostatTarget = 300
	cfg.ThermostatTau = 0.01
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Step(250); err != nil {
		t.Fatal(err)
	}
	if got := sim.Temperature(); math.Abs(got-300) > 80 {
		t.Errorf("hybrid thermostatted T = %g, want ≈300", got)
	}
	// Bad thermostat params rejected.
	bad := DefaultConfig()
	bad.ThermostatTarget = 100 // no tau
	if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, bad); err == nil {
		t.Error("thermostat without tau accepted")
	}
	bad2 := DefaultConfig()
	bad2.ThermostatTarget = -5
	if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, bad2); err == nil {
		t.Error("negative target accepted")
	}
}
