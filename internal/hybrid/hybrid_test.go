package hybrid

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"sdcmd/internal/force"
	"sdcmd/internal/guard"
	"sdcmd/internal/lattice"
	"sdcmd/internal/md"
	"sdcmd/internal/strategy"
	"sdcmd/internal/vec"
)

// globalSystem builds the shared test configuration: a jittered bcc-Fe
// crystal with Maxwell-Boltzmann velocities.
func globalSystem(t *testing.T, cells int, temp float64) *md.System {
	t.Helper()
	cfg := lattice.MustBuild(lattice.BCC, cells, cells, cells, lattice.FeLatticeConstant)
	cfg.Jitter(0.05, 21)
	sys := md.FromLattice(cfg)
	if err := sys.InitVelocities(temp, 31); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCommValidation(t *testing.T) {
	if _, err := NewComm(0); err == nil {
		t.Error("0 ranks accepted")
	}
	c, err := NewComm(3)
	if err != nil || c.Ranks() != 3 {
		t.Fatalf("NewComm: %v", err)
	}
}

func TestCommCollectives(t *testing.T) {
	c, err := NewComm(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	sums := make([]float64, 4)
	maxs := make([]float64, 4)
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var err error
			if sums[id], err = c.AllReduceSum(id, float64(id+1)); err != nil {
				t.Errorf("rank %d sum: %v", id, err)
			}
			if maxs[id], err = c.AllReduceMax(id, float64((id*7)%5)); err != nil {
				t.Errorf("rank %d max: %v", id, err)
			}
			if err := c.Barrier(id); err != nil {
				t.Errorf("rank %d barrier: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	for id := 0; id < 4; id++ {
		if sums[id] != 10 {
			t.Errorf("rank %d sum = %g, want 10", id, sums[id])
		}
		if maxs[id] != 4 { // values 0,2,4,1
			t.Errorf("rank %d max = %g, want 4", id, maxs[id])
		}
	}
}

func TestCommSingleRankCollectives(t *testing.T) {
	c, _ := NewComm(1)
	sum, err1 := c.AllReduceSum(0, 3.5)
	max, err2 := c.AllReduceMax(0, 2.5)
	if sum != 3.5 || max != 2.5 || err1 != nil || err2 != nil {
		t.Error("single-rank collectives must be identity")
	}
	if err := c.Barrier(0); err != nil { // must not block
		t.Error(err)
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	sys := globalSystem(t, 6, 100)
	good := DefaultConfig()
	cases := []func(*Config){
		func(c *Config) { c.Pot = nil },
		func(c *Config) { c.Ranks = 1 },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.Skin = -1 },
		func(c *Config) { c.Mass = 0 },
		func(c *Config) { c.Strategy = strategy.CS },
		func(c *Config) { c.Strategy = strategy.SDC; c.ThreadsPerRank = 0 },
		func(c *Config) { c.Ranks = 64 }, // slab thinner than reach
	}
	for i, mut := range cases {
		cfg := good
		mut(&cfg)
		if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel[:3], good); err == nil {
		t.Error("mismatched velocities accepted")
	}
	open := sys.Box
	open.Periodic[0] = false
	if _, err := NewSimulator(open, sys.Pos, sys.Vel, good); err == nil {
		t.Error("non-periodic box accepted")
	}
}

func TestInitialForcesMatchGlobalReference(t *testing.T) {
	sys := globalSystem(t, 6, 0)
	wantF, wantTotal, _, _ := force.Reference(DefaultConfig().Pot, sys.Box, sys.Pos)

	for _, tc := range []struct {
		ranks   int
		strat   strategy.Kind
		threads int
	}{
		{2, strategy.Serial, 1},
		{3, strategy.Serial, 1},
		{2, strategy.SDC, 2},
	} {
		cfg := DefaultConfig()
		cfg.Ranks = tc.ranks
		cfg.Strategy = tc.strat
		cfg.ThreadsPerRank = tc.threads
		sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
		if err != nil {
			t.Fatalf("ranks=%d: %v", tc.ranks, err)
		}
		_, _, frc := sim.Gather()
		for i := range wantF {
			if !frc[i].ApproxEqual(wantF[i], 1e-9*(1+wantF[i].Norm())) {
				t.Fatalf("ranks=%d %v: force[%d] = %v, want %v", tc.ranks, tc.strat, i, frc[i], wantF[i])
			}
		}
		if pe := sim.PotentialEnergy(); math.Abs(pe-wantTotal) > 1e-8*(1+math.Abs(wantTotal)) {
			t.Errorf("ranks=%d: PE = %g, want %g", tc.ranks, pe, wantTotal)
		}
		if sim.N() != sys.N() {
			t.Errorf("ranks=%d: N = %d, want %d", tc.ranks, sim.N(), sys.N())
		}
		sim.Close()
	}
}

func TestTrajectoryMatchesSingleDomain(t *testing.T) {
	// The hybrid run must track the shared-memory md.Simulator: same
	// physics, only the parallelization differs.
	sys := globalSystem(t, 6, 120)
	ref := sys.Clone()
	mcfg := md.DefaultConfig()
	refSim, err := md.NewSimulator(ref, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer refSim.Close()
	if err := refSim.Step(20); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Ranks = 3
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Step(20); err != nil {
		t.Fatal(err)
	}
	pos, _, _ := sim.Gather()
	for i := range pos {
		d := sys.Box.MinImage(pos[i], ref.Pos[i]).Norm()
		if d > 1e-7 {
			t.Fatalf("atom %d diverged by %g Å after 20 steps", i, d)
		}
	}
	if sim.StepCount() != 20 {
		t.Errorf("StepCount = %d", sim.StepCount())
	}
}

func TestHybridEnergyConservation(t *testing.T) {
	sys := globalSystem(t, 6, 150)
	cfg := DefaultConfig()
	cfg.Ranks = 2
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	e0 := sim.TotalEnergy()
	if err := sim.Step(100); err != nil {
		t.Fatal(err)
	}
	e1 := sim.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 1e-4 {
		t.Errorf("hybrid NVE drift %g (E %g -> %g)", drift, e0, e1)
	}
}

func TestMigrationPreservesAtoms(t *testing.T) {
	// Hot system + tiny skin: frequent rebuilds and real migration.
	sys := globalSystem(t, 6, 1500)
	cfg := DefaultConfig()
	cfg.Ranks = 3
	cfg.Skin = 0.15
	cfg.Dt = 2e-3
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Step(60); err != nil {
		t.Fatal(err)
	}
	if sim.N() != sys.N() {
		t.Fatalf("atoms lost: %d vs %d", sim.N(), sys.N())
	}
	// Every global id present exactly once.
	seen := make([]bool, sys.N())
	for _, r := range sim.ranks {
		for i := 0; i < r.nOwned; i++ {
			g := r.gid[i]
			if seen[g] {
				t.Fatalf("atom %d owned twice", g)
			}
			seen[g] = true
			// Owned atoms sit inside their rank's slab (post-rebuild
			// drift is bounded by skin/2; we just rebuilt-or-not, so
			// allow that slack).
			x := sys.Box.Wrap(r.pos[i])[0]
			if x < r.slabLo-cfg.Skin && x > r.slabHi+cfg.Skin {
				t.Fatalf("atom %d at x=%g outside slab [%g, %g]", g, x, r.slabLo, r.slabHi)
			}
		}
	}
	for g, ok := range seen {
		if !ok {
			t.Fatalf("atom %d vanished", g)
		}
	}
	loads := sim.RankLoads()
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != sys.N() {
		t.Errorf("RankLoads sum %d != %d", total, sys.N())
	}
	// Forces after all that churn still match a fresh reference.
	pos, _, frc := sim.Gather()
	wantF, _, _, _ := force.Reference(cfg.Pot, sys.Box, pos)
	for i := range frc {
		if !frc[i].ApproxEqual(wantF[i], 1e-6*(1+wantF[i].Norm())) {
			t.Fatalf("post-migration force[%d] = %v, want %v", i, frc[i], wantF[i])
		}
	}
}

func TestHybridSDCMatchesHybridSerial(t *testing.T) {
	sysA := globalSystem(t, 6, 100)
	sysB := sysA.Clone()

	run := func(sys *md.System, strat strategy.Kind, threads int) []vec.Vec3 {
		cfg := DefaultConfig()
		cfg.Ranks = 2
		cfg.Strategy = strat
		cfg.ThreadsPerRank = threads
		sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		if err := sim.Step(15); err != nil {
			t.Fatal(err)
		}
		pos, _, _ := sim.Gather()
		return pos
	}
	pa := run(sysA, strategy.Serial, 1)
	pb := run(sysB, strategy.SDC, 3)
	for i := range pa {
		if d := sysA.Box.MinImage(pa[i], pb[i]).Norm(); d > 1e-8 {
			t.Fatalf("SDC-in-rank trajectory diverged at atom %d by %g", i, d)
		}
	}
}

func TestGatherShapes(t *testing.T) {
	sys := globalSystem(t, 6, 50)
	cfg := DefaultConfig()
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	pos, vel, frc := sim.Gather()
	if len(pos) != sys.N() || len(vel) != sys.N() || len(frc) != sys.N() {
		t.Error("Gather shapes wrong")
	}
	if sim.Temperature() <= 0 {
		t.Error("temperature must be positive")
	}
}

func TestHybridThermostat(t *testing.T) {
	sys := globalSystem(t, 6, 50)
	cfg := DefaultConfig()
	cfg.Ranks = 2
	cfg.ThermostatTarget = 300
	cfg.ThermostatTau = 0.01
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Step(250); err != nil {
		t.Fatal(err)
	}
	if got := sim.Temperature(); math.Abs(got-300) > 80 {
		t.Errorf("hybrid thermostatted T = %g, want ≈300", got)
	}
	// Bad thermostat params rejected.
	bad := DefaultConfig()
	bad.ThermostatTarget = 100 // no tau
	if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, bad); err == nil {
		t.Error("thermostat without tau accepted")
	}
	bad2 := DefaultConfig()
	bad2.ThermostatTarget = -5
	if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, bad2); err == nil {
		t.Error("negative target accepted")
	}
}

// TestWedgedRankTimesOut wedges one rank (it simply never participates)
// and asserts every healthy wait fails with the typed *TimeoutError
// instead of hanging: point-to-point receive, allreduce and barrier.
func TestWedgedRankTimesOut(t *testing.T) {
	c, err := NewComm(2)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTimeout(50 * time.Millisecond)

	// Rank 1 never sends: recv on rank 0 must time out.
	_, err = c.recv(1, 0, tagFor(tagGhosts, sideLeft))
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("recv from wedged rank returned %v, want *TimeoutError", err)
	}
	if te.Rank != 0 || te.Src != 1 || te.Op != "recv" {
		t.Errorf("timeout fields %+v: want rank 0 waiting on src 1 in recv", te)
	}

	// Rank 1 never joins the collective: rank 0's allreduce times out.
	if _, err := c.AllReduceSum(0, 1.0); !errors.As(err, &te) {
		t.Fatalf("allreduce with wedged peer returned %v, want *TimeoutError", err)
	} else if te.Op != "allreduce" {
		t.Errorf("op %q, want allreduce", te.Op)
	}

	// Same for the barrier (fresh comm: the dead allreduce left state).
	c2, err := NewComm(2)
	if err != nil {
		t.Fatal(err)
	}
	c2.SetTimeout(50 * time.Millisecond)
	if err := c2.Barrier(0); !errors.As(err, &te) {
		t.Fatalf("barrier with wedged peer returned %v, want *TimeoutError", err)
	} else if te.Op != "barrier" {
		t.Errorf("op %q, want barrier", te.Op)
	}
}

// TestExchangeTimeoutClean asserts a healthy simulation is unaffected
// by an armed exchange timeout and that a generous timeout never fires.
func TestExchangeTimeoutClean(t *testing.T) {
	sys := globalSystem(t, 6, 100)
	cfg := DefaultConfig()
	cfg.ExchangeTimeout = 5 * time.Second
	cfg.CheckEvery = 2
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Step(6); err != nil {
		t.Fatalf("healthy run with timeout armed failed: %v", err)
	}
	bad := DefaultConfig()
	bad.ExchangeTimeout = -time.Second
	if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, bad); err == nil {
		t.Error("negative exchange timeout accepted")
	}
	bad = DefaultConfig()
	bad.CheckEvery = -1
	if _, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, bad); err == nil {
		t.Error("negative check interval accepted")
	}
}

// TestCheckEveryCatchesCorruption corrupts one rank's owned state
// between steps and asserts the per-rank invariant check converts it
// into a typed guard fault naming the rank.
func TestCheckEveryCatchesCorruption(t *testing.T) {
	sys := globalSystem(t, 6, 100)
	cfg := DefaultConfig()
	cfg.CheckEvery = 1
	sim, err := NewSimulator(sys.Box, sys.Pos, sys.Vel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Step(2); err != nil {
		t.Fatal(err)
	}
	sim.ranks[1].vel[0] = vec.New(math.NaN(), 0, 0)
	err = sim.Step(1)
	if err == nil {
		t.Fatal("NaN velocity survived the per-rank check")
	}
	f, ok := guard.AsFault(err)
	if !ok {
		t.Fatalf("step error %v does not wrap a guard fault", err)
	}
	if f.Monitor != "finite-vel" || f.Atom != 0 {
		t.Errorf("fault %+v, want finite-vel on local atom 0", f)
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Errorf("error %q does not name the corrupt rank", err)
	}
}
