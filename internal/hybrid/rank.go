package hybrid

import (
	"fmt"
	"sort"

	"sdcmd/internal/box"
	"sdcmd/internal/core"
	"sdcmd/internal/neighbor"
	"sdcmd/internal/strategy"
	"sdcmd/internal/vec"
)

// rank is one simulated MPI process owning an x-slab of the global box.
// Local atom indexing is owned-first: indices [0, nOwned) are owned,
// [nOwned, nLocal) are ghosts imported from the two x-neighbors.
type rank struct {
	id   int
	comm *Comm
	cfg  Config
	gbox box.Box // global periodic cell

	slabLo, slabHi float64 // owned x-range
	left, right    int     // neighbor rank ids

	// Owned state (parallel arrays, length nOwned).
	gid []int32
	pos []vec.Vec3 // extended to nLocal with ghost positions
	vel []vec.Vec3
	frc []vec.Vec3 // extended to nLocal for ghost force accumulation

	nOwned int

	// Ghost bookkeeping, fixed between rebuilds. sendIdx[s] lists the
	// owned local indices exported to side s (0=left, 1=right);
	// sendShift[s] is the periodic image shift applied to their
	// positions; recvCount[s] is how many ghosts arrived from side s
	// (stored contiguously: left block first).
	sendIdx   [2][]int32
	sendShift [2]vec.Vec3
	recvCount [2]int
	ghostGid  []int32 // global ids of ghosts, aligned with slots

	// Force-evaluation state.
	lbox box.Box // local extended box: x open, y/z periodic
	list *neighbor.List
	dec  *core.Decomposition // SDC over owned atoms (nil when serial)
	pool *strategy.Pool
	rho  []float64
	fp   []float64

	posAtBuild []vec.Vec3 // owned positions at last rebuild

	// Per-step outputs.
	pairEnergy  float64
	embedEnergy float64
}

// side constants.
const (
	sideLeft  = 0
	sideRight = 1
)

// sideOf encodes which direction a packet was sent in, piggybacked on
// the tag so R=2 (left == right neighbor) stays unambiguous.
func tagFor(base, side int) int { return base*2 + side }

// reach returns the ghost/import range.
func (r *rank) reach() float64 { return r.cfg.Pot.Cutoff() + r.cfg.Skin }

// ownerOf returns the rank owning a (wrapped) x coordinate.
func (r *rank) ownerOf(x float64) int {
	lx := r.gbox.Lengths()[0]
	o := int((x - r.gbox.Lo[0]) / lx * float64(r.comm.Ranks()))
	if o >= r.comm.Ranks() {
		o = r.comm.Ranks() - 1
	}
	if o < 0 {
		o = 0
	}
	return o
}

// wrapOwned wraps owned positions into the global cell (done only at
// rebuild so ghost image shifts stay consistent between rebuilds).
func (r *rank) wrapOwned() {
	for i := 0; i < r.nOwned; i++ {
		r.pos[i] = r.gbox.Wrap(r.pos[i])
	}
}

// migrate sends owned atoms whose wrapped x now belongs to another rank
// and receives immigrants. All-to-all: one (possibly empty) packet to
// every other rank.
func (r *rank) migrate() error {
	R := r.comm.Ranks()
	out := make(map[int]*packet, R-1)
	keepG := r.gid[:0]
	keepP := make([]vec.Vec3, 0, r.nOwned)
	keepV := make([]vec.Vec3, 0, r.nOwned)
	for i := 0; i < r.nOwned; i++ {
		o := r.ownerOf(r.pos[i][0])
		if o == r.id {
			keepG = append(keepG, r.gid[i])
			keepP = append(keepP, r.pos[i])
			keepV = append(keepV, r.vel[i])
			continue
		}
		p := out[o]
		if p == nil {
			p = &packet{tag: tagMigrate}
			out[o] = p
		}
		p.ids = append(p.ids, r.gid[i])
		p.vecs = append(p.vecs, r.pos[i])
		p.vecs2 = append(p.vecs2, r.vel[i])
	}
	for dst := 0; dst < R; dst++ {
		if dst == r.id {
			continue
		}
		p := out[dst]
		if p == nil {
			p = &packet{tag: tagMigrate}
		}
		r.comm.send(r.id, dst, *p)
	}
	r.gid = keepG
	newP, newV := keepP, keepV
	for src := 0; src < R; src++ {
		if src == r.id {
			continue
		}
		p, err := r.comm.recv(src, r.id, tagMigrate)
		if err != nil {
			return err
		}
		r.gid = append(r.gid, p.ids...)
		newP = append(newP, p.vecs...)
		newV = append(newV, p.vecs2...)
	}
	r.nOwned = len(r.gid)
	r.pos = newP
	r.vel = newV
	// Deterministic local order regardless of arrival order: sort by
	// global id so trajectories are reproducible across runs.
	order := make([]int, r.nOwned)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return r.gid[order[a]] < r.gid[order[b]] })
	sg := make([]int32, r.nOwned)
	sp := make([]vec.Vec3, r.nOwned)
	sv := make([]vec.Vec3, r.nOwned)
	for k, idx := range order {
		sg[k], sp[k], sv[k] = r.gid[idx], r.pos[idx], r.vel[idx]
	}
	r.gid, r.pos, r.vel = sg, sp, sv
	return nil
}

// exchangeGhosts (at rebuild) selects boundary atoms, ships them to the
// two x-neighbors with the right periodic image shift, and installs the
// received ghosts after the owned block.
func (r *rank) exchangeGhosts() error {
	reach := r.reach()
	lx := r.gbox.Lengths()[0]
	r.sendIdx[sideLeft] = r.sendIdx[sideLeft][:0]
	r.sendIdx[sideRight] = r.sendIdx[sideRight][:0]
	r.sendShift[sideLeft] = vec.Zero
	r.sendShift[sideRight] = vec.Zero
	if r.id == 0 {
		r.sendShift[sideLeft] = vec.New(lx, 0, 0) // appears beyond right edge
	}
	if r.id == r.comm.Ranks()-1 {
		r.sendShift[sideRight] = vec.New(-lx, 0, 0)
	}
	for i := 0; i < r.nOwned; i++ {
		x := r.pos[i][0]
		if x < r.slabLo+reach {
			r.sendIdx[sideLeft] = append(r.sendIdx[sideLeft], int32(i))
		}
		if x >= r.slabHi-reach {
			r.sendIdx[sideRight] = append(r.sendIdx[sideRight], int32(i))
		}
	}
	for _, side := range []int{sideLeft, sideRight} {
		dst := r.left
		if side == sideRight {
			dst = r.right
		}
		idx := r.sendIdx[side]
		p := packet{tag: tagFor(tagGhosts, side), ids: make([]int32, len(idx)), vecs: make([]vec.Vec3, len(idx))}
		for k, li := range idx {
			p.ids[k] = r.gid[li]
			p.vecs[k] = r.pos[li].Add(r.sendShift[side])
		}
		r.comm.send(r.id, dst, p)
	}
	// Receive: from the left neighbor comes the packet it sent right,
	// and vice versa.
	fromLeft, err := r.comm.recv(r.left, r.id, tagFor(tagGhosts, sideRight))
	if err != nil {
		return err
	}
	fromRight, err := r.comm.recv(r.right, r.id, tagFor(tagGhosts, sideLeft))
	if err != nil {
		return err
	}
	r.recvCount[sideLeft] = len(fromLeft.ids)
	r.recvCount[sideRight] = len(fromRight.ids)

	nLocal := r.nOwned + len(fromLeft.ids) + len(fromRight.ids)
	r.pos = append(r.pos[:r.nOwned], fromLeft.vecs...)
	r.pos = append(r.pos, fromRight.vecs...)
	r.ghostGid = append(r.ghostGid[:0], fromLeft.ids...)
	r.ghostGid = append(r.ghostGid, fromRight.ids...)
	if cap(r.frc) < nLocal {
		r.frc = make([]vec.Vec3, nLocal)
	} else {
		r.frc = r.frc[:nLocal]
	}
	if cap(r.rho) < nLocal {
		r.rho = make([]float64, nLocal)
		r.fp = make([]float64, nLocal)
	} else {
		r.rho = r.rho[:nLocal]
		r.fp = r.fp[:nLocal]
	}
	return nil
}

// refreshGhostPositions (every non-rebuild step) re-sends the current
// positions of the fixed export sets.
func (r *rank) refreshGhostPositions() error {
	for _, side := range []int{sideLeft, sideRight} {
		dst := r.left
		if side == sideRight {
			dst = r.right
		}
		idx := r.sendIdx[side]
		p := packet{tag: tagFor(tagPos, side), vecs: make([]vec.Vec3, len(idx))}
		for k, li := range idx {
			p.vecs[k] = r.pos[li].Add(r.sendShift[side])
		}
		r.comm.send(r.id, dst, p)
	}
	fromLeft, err := r.comm.recv(r.left, r.id, tagFor(tagPos, sideRight))
	if err != nil {
		return err
	}
	fromRight, err := r.comm.recv(r.right, r.id, tagFor(tagPos, sideLeft))
	if err != nil {
		return err
	}
	copy(r.pos[r.nOwned:], fromLeft.vecs)
	copy(r.pos[r.nOwned+len(fromLeft.vecs):], fromRight.vecs)
	return nil
}

// rebuildStructures reconstructs the local extended box, the filtered
// half neighbor list and the per-rank SDC decomposition.
func (r *rank) rebuildStructures() error {
	reach := r.reach()
	lo, hi := r.gbox.Lo, r.gbox.Hi
	lo[0], hi[0] = r.slabLo-reach-1e-9, r.slabHi+reach+1e-9
	lbox, err := box.New(lo, hi)
	if err != nil {
		return err
	}
	lbox.Periodic = [3]bool{false, true, true}
	r.lbox = lbox

	full, err := neighbor.Builder{Cutoff: r.cfg.Pot.Cutoff(), Skin: r.cfg.Skin, Half: true}.
		Build(lbox, r.pos)
	if err != nil {
		return err
	}
	r.list = filterCrossRank(full, r.nOwned, r.gid, r.ghostGid)

	if r.cfg.Strategy == strategy.SDC {
		slab := r.gbox
		slab.Lo[0], slab.Hi[0] = r.slabLo, r.slabHi
		slab.Periodic[0] = false
		dec, err := core.DecomposeAxes(slab, r.pos[:r.nOwned], []vec.Axis{vec.Y, vec.Z}, reach)
		if err != nil {
			return fmt.Errorf("hybrid: rank %d SDC decomposition: %w", r.id, err)
		}
		r.dec = dec
	}
	if cap(r.posAtBuild) < r.nOwned {
		r.posAtBuild = make([]vec.Vec3, r.nOwned)
	} else {
		r.posAtBuild = r.posAtBuild[:r.nOwned]
	}
	copy(r.posAtBuild, r.pos[:r.nOwned])
	return nil
}

// filterCrossRank keeps exactly the pairs this rank must compute:
// owned-owned pairs (i < j local, as built), and owned-ghost pairs
// where the owned atom's global id is smaller than the ghost's — the
// tie-break that assigns every cross-rank pair to exactly one rank.
// Ghost-owned rows cannot occur (ghost local indices are larger) and
// ghost-ghost pairs are dropped (computed by a neighboring rank).
func filterCrossRank(l *neighbor.List, nOwned int, gid, ghostGid []int32) *neighbor.List {
	out := &neighbor.List{
		Half:   true,
		Cutoff: l.Cutoff,
		Skin:   l.Skin,
		Index:  make([]int32, l.N()),
		Len:    make([]int32, l.N()),
	}
	keep := make([]int32, 0, l.Pairs())
	for i := 0; i < l.N(); i++ {
		out.Index[i] = int32(len(keep))
		if i >= nOwned {
			continue // ghost row: ghost-ghost only
		}
		for _, j := range l.Neighbors(i) {
			if int(j) < nOwned {
				keep = append(keep, j) // owned-owned
				continue
			}
			if gid[i] < ghostGid[int(j)-nOwned] {
				keep = append(keep, j) // this rank owns the pair
			}
		}
		out.Len[i] = int32(len(keep)) - out.Index[i]
	}
	out.Neigh = keep
	return out
}

// sweepPairs runs body over every kept pair, either serially or as an
// SDC color sweep over the rank's worker pool. body must be safe under
// the SDC write-disjointness guarantee (it writes only slots i and j,
// plus per-tid scratch).
func (r *rank) sweepPairs(body func(i, j int32, tid int)) {
	if r.dec == nil || r.pool == nil {
		for i := 0; i < r.nOwned; i++ {
			for _, j := range r.list.Neighbors(i) {
				body(int32(i), j, 0)
			}
		}
		return
	}
	for c := 0; c < r.dec.NumColors(); c++ {
		subs := r.dec.ByColor[c]
		r.pool.ParallelForStrided(len(subs), func(k, tid int) {
			s := int(subs[k])
			for _, i := range r.dec.Atoms(s) {
				for _, j := range r.list.Neighbors(int(i)) {
					body(i, j, tid)
				}
			}
		})
	}
}

// reverseComm ships ghost-slot scalar accumulations back to their
// owners, which add them into their own slots; the mirror image of
// exchangeGhosts. vals has nLocal entries; add receives (ownedIdx, v).
func (r *rank) reverseCommScalar(vals []float64, tagBase int) error {
	offL := r.nOwned
	offR := r.nOwned + r.recvCount[sideLeft]
	// Return left-block accumulations to the left neighbor and
	// right-block to the right. The receiving side matches them to its
	// sendIdx sets in order.
	pl := packet{tag: tagFor(tagBase, sideLeft), scalars: append([]float64(nil), vals[offL:offR]...)}
	pr := packet{tag: tagFor(tagBase, sideRight), scalars: append([]float64(nil), vals[offR:]...)}
	r.comm.send(r.id, r.left, pl)
	r.comm.send(r.id, r.right, pr)
	// The left neighbor returns accumulations for the atoms this rank
	// exported to it (sendIdx[sideLeft]), and vice versa.
	fromLeft, err := r.comm.recv(r.left, r.id, tagFor(tagBase, sideRight))
	if err != nil {
		return err
	}
	fromRight, err := r.comm.recv(r.right, r.id, tagFor(tagBase, sideLeft))
	if err != nil {
		return err
	}
	for k, li := range r.sendIdx[sideLeft] {
		vals[li] += fromLeft.scalars[k]
	}
	for k, li := range r.sendIdx[sideRight] {
		vals[li] += fromRight.scalars[k]
	}
	return nil
}

// reverseCommVec is reverseCommScalar for vectors (ghost forces).
func (r *rank) reverseCommVec(vals []vec.Vec3, tagBase int) error {
	offL := r.nOwned
	offR := r.nOwned + r.recvCount[sideLeft]
	pl := packet{tag: tagFor(tagBase, sideLeft), vecs: append([]vec.Vec3(nil), vals[offL:offR]...)}
	pr := packet{tag: tagFor(tagBase, sideRight), vecs: append([]vec.Vec3(nil), vals[offR:]...)}
	r.comm.send(r.id, r.left, pl)
	r.comm.send(r.id, r.right, pr)
	fromLeft, err := r.comm.recv(r.left, r.id, tagFor(tagBase, sideRight))
	if err != nil {
		return err
	}
	fromRight, err := r.comm.recv(r.right, r.id, tagFor(tagBase, sideLeft))
	if err != nil {
		return err
	}
	for k, li := range r.sendIdx[sideLeft] {
		vals[li] = vals[li].Add(fromLeft.vecs[k])
	}
	for k, li := range r.sendIdx[sideRight] {
		vals[li] = vals[li].Add(fromRight.vecs[k])
	}
	return nil
}

// forwardCommScalar ships owner values of the exported atoms out to the
// ranks holding them as ghosts (F'(ρ) before the force sweep).
func (r *rank) forwardCommScalar(vals []float64, tagBase int) error {
	for _, side := range []int{sideLeft, sideRight} {
		dst := r.left
		if side == sideRight {
			dst = r.right
		}
		idx := r.sendIdx[side]
		p := packet{tag: tagFor(tagBase, side), scalars: make([]float64, len(idx))}
		for k, li := range idx {
			p.scalars[k] = vals[li]
		}
		r.comm.send(r.id, dst, p)
	}
	fromLeft, err := r.comm.recv(r.left, r.id, tagFor(tagBase, sideRight))
	if err != nil {
		return err
	}
	fromRight, err := r.comm.recv(r.right, r.id, tagFor(tagBase, sideLeft))
	if err != nil {
		return err
	}
	copy(vals[r.nOwned:], fromLeft.scalars)
	copy(vals[r.nOwned+len(fromLeft.scalars):], fromRight.scalars)
	return nil
}

// computeForces runs the distributed three-phase EAM evaluation.
func (r *rank) computeForces() error {
	pot := r.cfg.Pot
	cut := pot.Cutoff()
	nLocal := len(r.pos)

	// Phase 1: densities (local sweep + reverse comm of ghost rho).
	for i := 0; i < nLocal; i++ {
		r.rho[i] = 0
	}
	r.sweepPairs(func(i, j int32, _ int) {
		d := r.lbox.MinImage(r.pos[i], r.pos[j])
		dist := d.Norm()
		if dist <= 0 || dist >= cut {
			return
		}
		phi, _ := pot.Density(dist)
		r.rho[i] += phi
		r.rho[j] += phi
	})
	if err := r.reverseCommScalar(r.rho, tagRho); err != nil {
		return err
	}

	// Phase 2: embedding for owned atoms; forward comm of F'(ρ).
	embed := 0.0
	for i := 0; i < r.nOwned; i++ {
		fe, dfe := pot.Embed(r.rho[i])
		embed += fe
		r.fp[i] = dfe
	}
	r.embedEnergy = embed
	if err := r.forwardCommScalar(r.fp, tagFp); err != nil {
		return err
	}

	// Phase 3: forces (local sweep + reverse comm of ghost forces).
	for i := range r.frc {
		r.frc[i] = vec.Vec3{}
	}
	pairE := newPadded(r.threads())
	r.sweepPairs(func(i, j int32, tid int) {
		d := r.lbox.MinImage(r.pos[i], r.pos[j])
		dist := d.Norm()
		if dist <= 0 || dist >= cut {
			return
		}
		v, dv := pot.Energy(dist)
		_, dphi := pot.Density(dist)
		coeff := dv + (r.fp[i]+r.fp[j])*dphi
		f := d.Scale(-coeff / dist)
		r.frc[i] = r.frc[i].Add(f)
		r.frc[j] = r.frc[j].Sub(f)
		pairE.add(tid, v)
	})
	if err := r.reverseCommVec(r.frc, tagForce); err != nil {
		return err
	}
	r.pairEnergy = pairE.sum()
	return nil
}

// threads returns the per-rank worker count.
func (r *rank) threads() int {
	if r.pool == nil {
		return 1
	}
	return r.pool.Threads()
}

// padded is a tiny per-thread accumulator; with SDC sweeps multiple
// workers add concurrently, so each worker gets its own padded slot.
type padded struct {
	slots []paddedSlot
}

type paddedSlot struct {
	v float64
	_ [7]float64 // cache-line padding against false sharing
}

func newPadded(n int) *padded { return &padded{slots: make([]paddedSlot, n)} }

func (p *padded) add(slot int, v float64) { p.slots[slot].v += v }

func (p *padded) sum() float64 {
	t := 0.0
	for i := range p.slots {
		t += p.slots[i].v
	}
	return t
}

// maxDisplacement2 returns the largest squared drift of owned atoms
// since the last rebuild.
func (r *rank) maxDisplacement2() float64 {
	worst := 0.0
	for i := 0; i < r.nOwned; i++ {
		if d2 := r.gbox.Distance2(r.pos[i], r.posAtBuild[i]); d2 > worst {
			worst = d2
		}
	}
	return worst
}

// kineticEnergy of the owned atoms.
func (r *rank) kineticEnergy() float64 {
	ke := 0.0
	for i := 0; i < r.nOwned; i++ {
		ke += r.vel[i].Norm2()
	}
	return 0.5 * r.cfg.Mass * ke
}
