package hybrid

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"sdcmd/internal/box"
	"sdcmd/internal/guard"
	"sdcmd/internal/md"
	"sdcmd/internal/potential"
	"sdcmd/internal/strategy"
	"sdcmd/internal/vec"
)

// Config parameterizes a hybrid (rank-parallel + thread-parallel)
// simulation.
type Config struct {
	// Pot is the interatomic potential.
	Pot potential.EAM
	// Ranks is the number of simulated MPI processes (x-slabs), >= 2.
	Ranks int
	// Strategy selects the within-rank force parallelization: Serial
	// or SDC (the paper's hybrid vision is MPI across nodes + SDC
	// inside each node).
	Strategy strategy.Kind
	// ThreadsPerRank sizes each rank's worker pool when Strategy==SDC.
	ThreadsPerRank int
	// Skin is the Verlet skin (>= 0).
	Skin float64
	// Dt is the timestep in ps.
	Dt float64
	// Mass is the per-atom mass.
	Mass float64
	// ThermostatTarget, when > 0, applies a global Berendsen rescale
	// each step with time constant ThermostatTau (the collective
	// temperature comes from an allreduce, as a real MPI code does).
	ThermostatTarget, ThermostatTau float64
	// ExchangeTimeout bounds every blocking communication wait
	// (receives, allreduces); 0 waits forever. On expiry the step fails
	// with a typed *TimeoutError instead of hanging on a wedged rank.
	ExchangeTimeout time.Duration
	// CheckEvery, when > 0, validates each rank's owned positions,
	// velocities and forces for finiteness every CheckEvery steps; a
	// violation fails the step with a typed guard fault, so a
	// supervisor can roll back instead of integrating garbage.
	CheckEvery int
}

// DefaultConfig mirrors md.DefaultConfig for the hybrid engine.
func DefaultConfig() Config {
	return Config{
		Pot:            potential.DefaultFe(),
		Ranks:          2,
		Strategy:       strategy.Serial,
		ThreadsPerRank: 1,
		Skin:           0.5,
		Dt:             1e-3,
		Mass:           md.FeMass,
	}
}

// Simulator coordinates the ranks. All public methods are driven from
// one goroutine; rank goroutines only live inside calls.
type Simulator struct {
	cfg   Config
	comm  *Comm
	gbox  box.Box
	ranks []*rank
	step  int
}

// NewSimulator distributes the global configuration over the ranks,
// builds ghosts/lists/decompositions and computes initial forces.
func NewSimulator(gbox box.Box, pos, vel []vec.Vec3, cfg Config) (*Simulator, error) {
	if cfg.Pot == nil {
		return nil, errors.New("hybrid: nil potential")
	}
	if cfg.Ranks < 2 {
		return nil, fmt.Errorf("hybrid: ranks %d must be >= 2 (use md.Simulator for one domain)", cfg.Ranks)
	}
	if len(pos) != len(vel) {
		return nil, fmt.Errorf("hybrid: %d positions vs %d velocities", len(pos), len(vel))
	}
	if !(cfg.Dt > 0) || cfg.Skin < 0 || !(cfg.Mass > 0) {
		return nil, fmt.Errorf("hybrid: bad dt/skin/mass %g/%g/%g", cfg.Dt, cfg.Skin, cfg.Mass)
	}
	if cfg.Strategy != strategy.Serial && cfg.Strategy != strategy.SDC {
		return nil, fmt.Errorf("hybrid: within-rank strategy must be serial or sdc, got %v", cfg.Strategy)
	}
	if cfg.ThermostatTarget < 0 || (cfg.ThermostatTarget > 0 && !(cfg.ThermostatTau > 0)) {
		return nil, fmt.Errorf("hybrid: bad thermostat target %g / tau %g", cfg.ThermostatTarget, cfg.ThermostatTau)
	}
	if cfg.Strategy == strategy.SDC && cfg.ThreadsPerRank < 1 {
		return nil, fmt.Errorf("hybrid: threads per rank %d must be >= 1", cfg.ThreadsPerRank)
	}
	if cfg.ExchangeTimeout < 0 {
		return nil, fmt.Errorf("hybrid: exchange timeout %v must be >= 0", cfg.ExchangeTimeout)
	}
	if cfg.CheckEvery < 0 {
		return nil, fmt.Errorf("hybrid: check interval %d must be >= 0", cfg.CheckEvery)
	}
	reach := cfg.Pot.Cutoff() + cfg.Skin
	l := gbox.Lengths()
	if !gbox.Periodic[0] || !gbox.Periodic[1] || !gbox.Periodic[2] {
		return nil, errors.New("hybrid: the global box must be fully periodic")
	}
	slabW := l[0] / float64(cfg.Ranks)
	if slabW < reach {
		return nil, fmt.Errorf("hybrid: slab width %g < reach %g — too many ranks for this box", slabW, reach)
	}
	if l[1] < 2*reach || l[2] < 2*reach {
		return nil, fmt.Errorf("hybrid: box cross-section %gx%g too small for reach %g", l[1], l[2], reach)
	}

	comm, err := NewComm(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	comm.SetTimeout(cfg.ExchangeTimeout)
	s := &Simulator{cfg: cfg, comm: comm, gbox: gbox, ranks: make([]*rank, cfg.Ranks)}
	for id := 0; id < cfg.Ranks; id++ {
		r := &rank{
			id:     id,
			comm:   comm,
			cfg:    cfg,
			gbox:   gbox,
			slabLo: gbox.Lo[0] + float64(id)*slabW,
			slabHi: gbox.Lo[0] + float64(id+1)*slabW,
			left:   (id - 1 + cfg.Ranks) % cfg.Ranks,
			right:  (id + 1) % cfg.Ranks,
		}
		if cfg.Strategy == strategy.SDC {
			pool, err := strategy.NewPool(cfg.ThreadsPerRank)
			if err != nil {
				return nil, err
			}
			r.pool = pool
		}
		s.ranks[id] = r
	}
	// Initial distribution by wrapped x.
	for i, p := range pos {
		w := gbox.Wrap(p)
		r := s.ranks[s.ranks[0].ownerOf(w[0])]
		r.gid = append(r.gid, int32(i))
		r.pos = append(r.pos, w)
		r.vel = append(r.vel, vel[i])
	}
	for _, r := range s.ranks {
		r.nOwned = len(r.gid)
	}
	if err := s.parallel(func(r *rank) error {
		if err := r.exchangeGhosts(); err != nil {
			return err
		}
		if err := r.rebuildStructures(); err != nil {
			return err
		}
		return r.computeForces()
	}); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// parallel runs f concurrently on every rank and joins errors.
func (s *Simulator) parallel(f func(r *rank) error) error {
	errs := make([]error, len(s.ranks))
	var wg sync.WaitGroup
	for i := range s.ranks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(s.ranks[i])
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Step advances n velocity-Verlet steps across all ranks in lockstep.
func (s *Simulator) Step(n int) error {
	cfg := s.cfg
	halfDtOverM := 0.5 * cfg.Dt / cfg.Mass
	halfSkin2 := (cfg.Skin / 2) * (cfg.Skin / 2)
	err := s.parallel(func(r *rank) error {
		for k := 0; k < n; k++ {
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].AddScaled(halfDtOverM, r.frc[i])
				r.pos[i] = r.pos[i].AddScaled(cfg.Dt, r.vel[i])
			}
			disp2 := r.maxDisplacement2()
			glob, err := r.comm.AllReduceMax(r.id, disp2)
			if err != nil {
				return err
			}
			if cfg.Skin <= 0 || glob > halfSkin2 {
				r.wrapOwned()
				if err := r.migrate(); err != nil {
					return err
				}
				if err := r.exchangeGhosts(); err != nil {
					return err
				}
				if err := r.rebuildStructures(); err != nil {
					return err
				}
			} else if err := r.refreshGhostPositions(); err != nil {
				return err
			}
			if err := r.computeForces(); err != nil {
				return err
			}
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].AddScaled(halfDtOverM, r.frc[i])
			}
			if cfg.ThermostatTarget > 0 {
				// Global Berendsen: temperature from collective KE.
				keGlobal, err := r.comm.AllReduceSum(r.id, r.kineticEnergy())
				if err != nil {
					return err
				}
				nGlobal, err := r.comm.AllReduceSum(r.id, float64(r.nOwned))
				if err != nil {
					return err
				}
				tCur := 2 * keGlobal / (3 * nGlobal * md.KB)
				if tCur > 0 {
					lambda2 := 1 + cfg.Dt/cfg.ThermostatTau*(cfg.ThermostatTarget/tCur-1)
					if lambda2 < 0.25 {
						lambda2 = 0.25
					}
					scale := math.Sqrt(lambda2)
					for i := 0; i < r.nOwned; i++ {
						r.vel[i] = r.vel[i].Scale(scale)
					}
				}
			}
			if cfg.CheckEvery > 0 && (s.step+k+1)%cfg.CheckEvery == 0 {
				// Each rank checks its own slab; the typed fault names
				// the local atom index and the rank via wrapping.
				if f := guard.CheckVectors(r.pos[:r.nOwned], r.vel, r.frc[:r.nOwned], s.step+k+1); f != nil {
					return fmt.Errorf("hybrid: rank %d: %w", r.id, f)
				}
			}
		}
		return nil
	})
	if err == nil {
		s.step += n
	}
	return err
}

// StepCount returns completed steps.
func (s *Simulator) StepCount() int { return s.step }

// N returns the global atom count.
func (s *Simulator) N() int {
	n := 0
	for _, r := range s.ranks {
		n += r.nOwned
	}
	return n
}

// PotentialEnergy returns the global EAM energy from the latest force
// evaluation (pair + embedding; each pair counted on exactly one rank).
func (s *Simulator) PotentialEnergy() float64 {
	e := 0.0
	for _, r := range s.ranks {
		e += r.pairEnergy + r.embedEnergy
	}
	return e
}

// KineticEnergy sums the owned-atom kinetic energies.
func (s *Simulator) KineticEnergy() float64 {
	ke := 0.0
	for _, r := range s.ranks {
		ke += r.kineticEnergy()
	}
	return ke
}

// TotalEnergy returns KE + PE.
func (s *Simulator) TotalEnergy() float64 {
	return s.KineticEnergy() + s.PotentialEnergy()
}

// Temperature returns the global kinetic temperature.
func (s *Simulator) Temperature() float64 {
	n := s.N()
	if n == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (3 * float64(n) * md.KB)
}

// Gather assembles the global positions, velocities and forces indexed
// by original atom id (for analysis, snapshots and tests).
func (s *Simulator) Gather() (pos, vel, frc []vec.Vec3) {
	n := s.N()
	pos = make([]vec.Vec3, n)
	vel = make([]vec.Vec3, n)
	frc = make([]vec.Vec3, n)
	for _, r := range s.ranks {
		for i := 0; i < r.nOwned; i++ {
			g := r.gid[i]
			pos[g] = s.gbox.Wrap(r.pos[i])
			vel[g] = r.vel[i]
			frc[g] = r.frc[i]
		}
	}
	return pos, vel, frc
}

// RankLoads returns the owned-atom count per rank (load-balance
// diagnostic).
func (s *Simulator) RankLoads() []int {
	out := make([]int, len(s.ranks))
	for i, r := range s.ranks {
		out[i] = r.nOwned
	}
	return out
}

// Close releases the per-rank worker pools.
func (s *Simulator) Close() {
	for _, r := range s.ranks {
		if r.pool != nil {
			r.pool.Close()
			r.pool = nil
		}
	}
}
