// Package hybrid implements the paper's second future-work direction
// (§V): "implement SDC method using mixed programming models such as
// MPI+OpenMP in multi-core cluster". Ranks own x-slabs of the global
// box and communicate like MPI processes — ghost-atom exchange, reverse
// accumulation of ghost densities and forces, forward propagation of
// embedding derivatives, atom migration, and allreduce for global
// scalars — while each rank parallelizes its local force loops with the
// SDC coloring (or serially). The message fabric is in-process typed
// channels, the documented MPI substitution (DESIGN.md §4): the
// communication *pattern* (who sends what when) is exactly the
// distributed EAM pattern, only the transport differs.
package hybrid

import (
	"fmt"
	"time"

	"sdcmd/internal/vec"
)

// TimeoutError reports a communication wait that exceeded the
// communicator's exchange timeout: the typed evidence that a peer rank
// is wedged (deadlocked, crashed, or pathologically slow) rather than a
// generic hang. Retrieve it with errors.As.
type TimeoutError struct {
	// Rank is the waiting rank.
	Rank int
	// Src is the peer being waited on (-1 for collectives, where the
	// laggard is unknown).
	Src int
	// Tag is the expected message tag (-1 for collectives).
	Tag int
	// Op names the blocked operation: "recv", "allreduce" or "barrier".
	Op string
	// Wait is the configured timeout that expired.
	Wait time.Duration
}

// Error formats the timeout for logs.
func (e *TimeoutError) Error() string {
	if e.Src >= 0 {
		return fmt.Sprintf("hybrid: rank %d: %s from rank %d (tag %d) timed out after %v — peer wedged?",
			e.Rank, e.Op, e.Src, e.Tag, e.Wait)
	}
	return fmt.Sprintf("hybrid: rank %d: %s timed out after %v — a peer is wedged", e.Rank, e.Op, e.Wait)
}

// packet is one point-to-point message.
type packet struct {
	tag int
	// ids are global atom ids; vecs and scalars are per-id payloads
	// (each tag uses the fields it needs).
	ids     []int32
	vecs    []vec.Vec3
	vecs2   []vec.Vec3
	scalars []float64
}

// Message tags, one per communication phase.
const (
	tagGhosts  = iota // rebuild: ghost ids + positions
	tagPos            // per step: updated ghost positions
	tagRho            // reverse: ghost density contributions
	tagFp             // forward: owner F'(ρ) for ghosts
	tagForce          // reverse: ghost force contributions
	tagMigrate        // rebuild: atoms changing owner (pos + vel)
)

// Comm connects R ranks with buffered point-to-point channels and
// collective helpers. It is the stand-in for an MPI communicator.
type Comm struct {
	ranks int
	// timeout bounds every blocking wait (0 = wait forever). Set once
	// before the rank goroutines start; read-only afterwards.
	timeout time.Duration
	// ch[src][dst] carries packets from src to dst.
	ch [][]chan packet
	// pending[src][dst] holds packets received ahead of their phase
	// (only dst's goroutine touches its column).
	pending [][][]packet
	// reduce implements allreduce via rank 0.
	gather    chan float64
	broadcast []chan float64
	// barrier implements a full barrier via rank 0.
	barIn  chan struct{}
	barOut []chan struct{}
}

// NewComm builds a communicator for ranks processes.
func NewComm(ranks int) (*Comm, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("hybrid: ranks %d must be >= 1", ranks)
	}
	c := &Comm{
		ranks:     ranks,
		ch:        make([][]chan packet, ranks),
		pending:   make([][][]packet, ranks),
		gather:    make(chan float64, ranks),
		broadcast: make([]chan float64, ranks),
		barIn:     make(chan struct{}, ranks),
		barOut:    make([]chan struct{}, ranks),
	}
	for s := 0; s < ranks; s++ {
		c.ch[s] = make([]chan packet, ranks)
		c.pending[s] = make([][]packet, ranks)
		for d := 0; d < ranks; d++ {
			// Capacity 4: every phase sends at most two packets per
			// (src,dst) pair before the matching receives run, so
			// sends never block and neighbor exchanges cannot
			// deadlock.
			c.ch[s][d] = make(chan packet, 4)
		}
		c.broadcast[s] = make(chan float64, 1)
		c.barOut[s] = make(chan struct{}, 1)
	}
	return c, nil
}

// Ranks returns the communicator size.
func (c *Comm) Ranks() int { return c.ranks }

// SetTimeout bounds every subsequent blocking wait (receive, allreduce,
// barrier) by d; zero restores unbounded waits. Call before handing the
// communicator to concurrent ranks.
func (c *Comm) SetTimeout(d time.Duration) { c.timeout = d }

// send transmits a packet from src to dst.
func (c *Comm) send(src, dst int, p packet) {
	c.ch[src][dst] <- p
}

// await receives from ch, bounded by the communicator timeout. mkErr
// builds the typed error lazily (only on expiry).
func await[T any](c *Comm, ch <-chan T, mkErr func() *TimeoutError) (T, error) {
	if c.timeout <= 0 {
		return <-ch, nil
	}
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case v := <-ch:
		return v, nil
	case <-timer.C:
		var zero T
		return zero, mkErr()
	}
}

// recv blocks for the next packet from src addressed to dst carrying
// wantTag, failing with a *TimeoutError when the communicator timeout
// expires first. When both x-neighbors are the same rank (R == 2) the
// two directional packets of one phase share a channel and can arrive
// in either logical order, so mismatching tags are stashed in a pending
// queue (read only by dst's goroutine — no locking needed).
func (c *Comm) recv(src, dst, wantTag int) (packet, error) {
	for i, p := range c.pending[src][dst] {
		if p.tag == wantTag {
			c.pending[src][dst] = append(c.pending[src][dst][:i], c.pending[src][dst][i+1:]...)
			return p, nil
		}
	}
	for {
		p, err := await(c, c.ch[src][dst], func() *TimeoutError {
			return &TimeoutError{Rank: dst, Src: src, Tag: wantTag, Op: "recv", Wait: c.timeout}
		})
		if err != nil {
			return packet{}, err
		}
		if p.tag == wantTag {
			return p, nil
		}
		if len(c.pending[src][dst]) > 8 {
			//lint:ignore no-panic protocol invariant: at most two in-flight packets per channel; overflow means a corrupted exchange
			panic(fmt.Sprintf("hybrid: rank %d pending overflow waiting for tag %d from %d", dst, wantTag, src))
		}
		c.pending[src][dst] = append(c.pending[src][dst], p)
	}
}

// AllReduceSum sums one float64 across all ranks; every rank receives
// the total. rank identifies the caller. A wedged peer surfaces as a
// *TimeoutError on every healthy rank.
func (c *Comm) AllReduceSum(rank int, v float64) (float64, error) {
	return c.allReduce(rank, v, func(acc, x float64) float64 { return acc + x })
}

// AllReduceMax is AllReduceSum with max instead of +.
func (c *Comm) AllReduceMax(rank int, v float64) (float64, error) {
	return c.allReduce(rank, v, func(acc, x float64) float64 {
		if x > acc {
			return x
		}
		return acc
	})
}

func (c *Comm) allReduce(rank int, v float64, combine func(acc, x float64) float64) (float64, error) {
	if c.ranks == 1 {
		return v, nil
	}
	mkErr := func() *TimeoutError {
		return &TimeoutError{Rank: rank, Src: -1, Tag: -1, Op: "allreduce", Wait: c.timeout}
	}
	c.gather <- v
	if rank == 0 {
		acc, err := await(c, c.gather, mkErr)
		if err != nil {
			return 0, err
		}
		for i := 1; i < c.ranks; i++ {
			x, err := await(c, c.gather, mkErr)
			if err != nil {
				return 0, err
			}
			acc = combine(acc, x)
		}
		for i := 0; i < c.ranks; i++ {
			c.broadcast[i] <- acc
		}
	}
	return await(c, c.broadcast[rank], mkErr)
}

// Barrier blocks until every rank has arrived, or the communicator
// timeout expires (a wedged peer).
func (c *Comm) Barrier(rank int) error {
	if c.ranks == 1 {
		return nil
	}
	mkErr := func() *TimeoutError {
		return &TimeoutError{Rank: rank, Src: -1, Tag: -1, Op: "barrier", Wait: c.timeout}
	}
	c.barIn <- struct{}{}
	if rank == 0 {
		for i := 0; i < c.ranks; i++ {
			if _, err := await(c, c.barIn, mkErr); err != nil {
				return err
			}
		}
		for i := 0; i < c.ranks; i++ {
			c.barOut[i] <- struct{}{}
		}
	}
	_, err := await(c, c.barOut[rank], mkErr)
	return err
}
