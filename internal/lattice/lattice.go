// Package lattice builds the crystalline initial configurations used by
// the paper's experiments: pure bcc iron replicas of four sizes
// (54 000, 265 302, 1 062 882 and 3 456 000 atoms, §III.B), plus the fcc
// and simple-cubic builders any general MD library needs.
package lattice

import (
	"fmt"
	"math/rand"

	"sdcmd/internal/box"
	"sdcmd/internal/vec"
)

// Kind selects the Bravais lattice of a build.
type Kind int

// Supported lattices.
const (
	SC  Kind = iota // simple cubic, 1 atom/cell
	BCC             // body-centered cubic, 2 atoms/cell
	FCC             // face-centered cubic, 4 atoms/cell
)

// String returns the conventional abbreviation.
func (k Kind) String() string {
	switch k {
	case SC:
		return "sc"
	case BCC:
		return "bcc"
	case FCC:
		return "fcc"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AtomsPerCell returns the number of basis atoms in the conventional
// cubic cell.
func (k Kind) AtomsPerCell() int {
	switch k {
	case SC:
		return 1
	case BCC:
		return 2
	case FCC:
		return 4
	}
	return 0
}

// basis returns the fractional basis of the conventional cell.
func (k Kind) basis() []vec.Vec3 {
	switch k {
	case SC:
		return []vec.Vec3{{0, 0, 0}}
	case BCC:
		return []vec.Vec3{{0, 0, 0}, {0.5, 0.5, 0.5}}
	case FCC:
		return []vec.Vec3{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}
	}
	return nil
}

// FeLatticeConstant is the bcc iron lattice constant in Å, the material
// of all four of the paper's test cases.
const FeLatticeConstant = 2.8665

// Config is a built crystal: the periodic cell and the atom positions
// inside it.
type Config struct {
	Box box.Box
	Pos []vec.Vec3
}

// N returns the number of atoms.
func (c *Config) N() int { return len(c.Pos) }

// Clone returns a deep copy (positions are copied).
func (c *Config) Clone() *Config {
	pos := make([]vec.Vec3, len(c.Pos))
	copy(pos, c.Pos)
	return &Config{Box: c.Box, Pos: pos}
}

// Build replicates the conventional cell of kind k nx×ny×nz times with
// lattice constant a0 and returns the configuration in a fully periodic
// box [0, n*a0)³. It returns an error for non-positive counts or a0.
func Build(k Kind, nx, ny, nz int, a0 float64) (*Config, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("lattice: cell counts must be positive, got %d×%d×%d", nx, ny, nz)
	}
	if a0 <= 0 {
		return nil, fmt.Errorf("lattice: lattice constant must be positive, got %g", a0)
	}
	basis := k.basis()
	if basis == nil {
		return nil, fmt.Errorf("lattice: unknown kind %v", k)
	}
	b, err := box.New(vec.Zero, vec.New(float64(nx)*a0, float64(ny)*a0, float64(nz)*a0))
	if err != nil {
		return nil, err
	}
	pos := make([]vec.Vec3, 0, nx*ny*nz*len(basis))
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				origin := vec.New(float64(ix)*a0, float64(iy)*a0, float64(iz)*a0)
				for _, fb := range basis {
					pos = append(pos, origin.Add(fb.Scale(a0)))
				}
			}
		}
	}
	return &Config{Box: b, Pos: pos}, nil
}

// MustBuild is Build but panics on error; for fixed-size test systems.
func MustBuild(k Kind, nx, ny, nz int, a0 float64) *Config {
	c, err := Build(k, nx, ny, nz, a0)
	if err != nil {
		panic(err)
	}
	return c
}

// Jitter displaces every atom by a uniform random vector in
// [-amp, amp]³ and re-wraps into the cell. Deterministic for a given
// seed. Breaking perfect lattice symmetry this way gives non-zero forces
// without waiting for thermal motion.
func (c *Config) Jitter(amp float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range c.Pos {
		d := vec.New(
			(2*rng.Float64()-1)*amp,
			(2*rng.Float64()-1)*amp,
			(2*rng.Float64()-1)*amp,
		)
		c.Pos[i] = c.Box.Wrap(c.Pos[i].Add(d))
	}
}

// Case identifies one of the paper's four test systems (§III.B).
type Case int

// The paper's test cases. Sizes are bcc replicas: 2·n³ atoms.
const (
	Small  Case = iota // case (1): 54 000 atoms  = 2·30³
	Medium             // case (2): 265 302 atoms = 2·51³
	Large3             // case (3): 1 062 882 atoms = 2·81³
	Large4             // case (4): 3 456 000 atoms = 2·120³
)

// Cases lists all four paper cases in order.
var Cases = []Case{Small, Medium, Large3, Large4}

// String names the case the way the paper's Table 1 does.
func (c Case) String() string {
	switch c {
	case Small:
		return "Small case (1)"
	case Medium:
		return "Medium case (2)"
	case Large3:
		return "Large case (3)"
	case Large4:
		return "Large case (4)"
	}
	return fmt.Sprintf("Case(%d)", int(c))
}

// CellsPerSide returns n where the case is a bcc n×n×n replica.
func (c Case) CellsPerSide() int {
	switch c {
	case Small:
		return 30
	case Medium:
		return 51
	case Large3:
		return 81
	case Large4:
		return 120
	}
	return 0
}

// Atoms returns the exact atom count of the paper case.
func (c Case) Atoms() int {
	n := c.CellsPerSide()
	return 2 * n * n * n
}

// BuildCase materializes a paper test case at the iron lattice constant.
// Beware the memory footprint: case (4) holds 3.456 M atoms.
func BuildCase(c Case) (*Config, error) {
	n := c.CellsPerSide()
	if n == 0 {
		return nil, fmt.Errorf("lattice: unknown case %v", c)
	}
	return Build(BCC, n, n, n, FeLatticeConstant)
}

// ScaledCase builds a geometrically similar (same bcc Fe crystal,
// same density) but smaller replica with cellsPerSide cells. The
// experiment harness uses this in measured mode so runs fit the host
// while the perf model uses the true sizes; speedup is size-normalized.
func ScaledCase(cellsPerSide int) (*Config, error) {
	return Build(BCC, cellsPerSide, cellsPerSide, cellsPerSide, FeLatticeConstant)
}
