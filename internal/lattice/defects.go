package lattice

import (
	"fmt"
	"math"
	"math/rand"

	"sdcmd/internal/vec"
)

// RemoveAtom deletes atom i (a vacancy). Order of the remaining atoms
// is preserved.
func (c *Config) RemoveAtom(i int) error {
	if i < 0 || i >= c.N() {
		return fmt.Errorf("lattice: atom %d out of range [0,%d)", i, c.N())
	}
	c.Pos = append(c.Pos[:i], c.Pos[i+1:]...)
	return nil
}

// AddVacancies removes n distinct randomly chosen atoms (deterministic
// for a seed) and returns the removed lattice positions.
func (c *Config) AddVacancies(n int, seed int64) ([]vec.Vec3, error) {
	if n < 0 || n > c.N() {
		return nil, fmt.Errorf("lattice: cannot remove %d of %d atoms", n, c.N())
	}
	rng := rand.New(rand.NewSource(seed))
	removed := make([]vec.Vec3, 0, n)
	for k := 0; k < n; k++ {
		i := rng.Intn(c.N())
		removed = append(removed, c.Pos[i])
		if err := c.RemoveAtom(i); err != nil {
			return nil, err
		}
	}
	return removed, nil
}

// AddInterstitial inserts an atom at position p (wrapped into the
// cell). The caller is responsible for relaxing the structure
// afterwards — an unrelaxed interstitial sits at enormous energy.
func (c *Config) AddInterstitial(p vec.Vec3) {
	c.Pos = append(c.Pos, c.Box.Wrap(p))
}

// OctahedralSite returns the octahedral interstitial position of the
// bcc conventional cell with origin at cell index (ix,iy,iz): the
// face-center/edge-midpoint site (½,½,0)·a relative to the cell origin.
func OctahedralSite(ix, iy, iz int, a0 float64) vec.Vec3 {
	return vec.New(
		(float64(ix)+0.5)*a0,
		(float64(iy)+0.5)*a0,
		float64(iz)*a0,
	)
}

// NearestAtom returns the index of the atom closest to p (minimum
// image) and the distance; -1 for an empty configuration.
func (c *Config) NearestAtom(p vec.Vec3) (int, float64) {
	best, bestD2 := -1, 0.0
	for i, q := range c.Pos {
		d2 := c.Box.Distance2(p, q)
		if best < 0 || d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, math.Sqrt(bestD2)
}
