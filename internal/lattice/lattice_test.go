package lattice

import (
	"math"
	"testing"

	"sdcmd/internal/vec"
)

func TestKindStrings(t *testing.T) {
	if SC.String() != "sc" || BCC.String() != "bcc" || FCC.String() != "fcc" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestAtomsPerCell(t *testing.T) {
	if SC.AtomsPerCell() != 1 || BCC.AtomsPerCell() != 2 || FCC.AtomsPerCell() != 4 {
		t.Error("atoms per cell wrong")
	}
	if Kind(9).AtomsPerCell() != 0 {
		t.Error("unknown kind must report 0 atoms/cell")
	}
}

func TestBuildCounts(t *testing.T) {
	for _, tc := range []struct {
		k          Kind
		nx, ny, nz int
		want       int
	}{
		{SC, 2, 3, 4, 24},
		{BCC, 3, 3, 3, 54},
		{FCC, 2, 2, 2, 32},
	} {
		c, err := Build(tc.k, tc.nx, tc.ny, tc.nz, 1.0)
		if err != nil {
			t.Fatalf("Build(%v): %v", tc.k, err)
		}
		if c.N() != tc.want {
			t.Errorf("Build(%v,%d,%d,%d) N = %d, want %d", tc.k, tc.nx, tc.ny, tc.nz, c.N(), tc.want)
		}
	}
}

func TestBuildRejectsBadArgs(t *testing.T) {
	if _, err := Build(BCC, 0, 1, 1, 1); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Build(BCC, 1, 1, 1, 0); err == nil {
		t.Error("zero a0 accepted")
	}
	if _, err := Build(BCC, 1, 1, 1, -2); err == nil {
		t.Error("negative a0 accepted")
	}
	if _, err := Build(Kind(42), 1, 1, 1, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild must panic on error")
		}
	}()
	MustBuild(BCC, -1, 1, 1, 1)
}

func TestAllAtomsInsideBox(t *testing.T) {
	for _, k := range []Kind{SC, BCC, FCC} {
		c := MustBuild(k, 3, 2, 4, 2.5)
		for i, p := range c.Pos {
			if !c.Box.Contains(p) {
				t.Errorf("%v atom %d outside box: %v", k, i, p)
			}
		}
	}
}

func TestNoDuplicateAtoms(t *testing.T) {
	c := MustBuild(BCC, 3, 3, 3, 2.8665)
	// Min distance in bcc is the nearest-neighbor distance a*sqrt(3)/2.
	minD2 := math.Inf(1)
	for i := 0; i < c.N(); i++ {
		for j := i + 1; j < c.N(); j++ {
			d2 := c.Box.Distance2(c.Pos[i], c.Pos[j])
			if d2 < minD2 {
				minD2 = d2
			}
		}
	}
	want := 2.8665 * math.Sqrt(3) / 2
	if math.Abs(math.Sqrt(minD2)-want) > 1e-9 {
		t.Errorf("bcc nearest neighbor distance = %g, want %g", math.Sqrt(minD2), want)
	}
}

func TestFCCNearestNeighbor(t *testing.T) {
	a := 3.52
	c := MustBuild(FCC, 3, 3, 3, a)
	minD2 := math.Inf(1)
	p0 := c.Pos[0]
	for j := 1; j < c.N(); j++ {
		if d2 := c.Box.Distance2(p0, c.Pos[j]); d2 < minD2 {
			minD2 = d2
		}
	}
	want := a / math.Sqrt(2)
	if math.Abs(math.Sqrt(minD2)-want) > 1e-9 {
		t.Errorf("fcc nearest neighbor = %g, want %g", math.Sqrt(minD2), want)
	}
}

func TestDensityMatchesLattice(t *testing.T) {
	// bcc: 2 atoms per a³.
	c := MustBuild(BCC, 4, 4, 4, 2.0)
	rho := float64(c.N()) / c.Box.Volume()
	if math.Abs(rho-2.0/8.0) > 1e-12 {
		t.Errorf("bcc density = %g, want 0.25", rho)
	}
}

func TestClone(t *testing.T) {
	c := MustBuild(SC, 2, 2, 2, 1)
	d := c.Clone()
	d.Pos[0] = vec.New(9, 9, 9)
	if c.Pos[0] == d.Pos[0] {
		t.Error("Clone must deep-copy positions")
	}
	if c.Box != d.Box {
		t.Error("Clone must copy box")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	a := MustBuild(BCC, 3, 3, 3, 2.8665)
	b := a.Clone()
	orig := a.Clone()
	a.Jitter(0.05, 42)
	b.Jitter(0.05, 42)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("Jitter not deterministic for equal seeds")
		}
		d := a.Box.MinImage(a.Pos[i], orig.Pos[i]).Norm()
		if d > 0.05*math.Sqrt(3)+1e-12 {
			t.Fatalf("Jitter moved atom %d by %g > amp bound", i, d)
		}
		if !a.Box.Contains(a.Pos[i]) {
			t.Fatalf("Jitter pushed atom %d outside box", i)
		}
	}
	moved := 0
	for i := range a.Pos {
		if a.Pos[i] != orig.Pos[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Error("Jitter with positive amplitude moved nothing")
	}
}

func TestJitterSeedsDiffer(t *testing.T) {
	a := MustBuild(SC, 3, 3, 3, 1)
	b := a.Clone()
	a.Jitter(0.1, 1)
	b.Jitter(0.1, 2)
	same := 0
	for i := range a.Pos {
		if a.Pos[i] == b.Pos[i] {
			same++
		}
	}
	if same == len(a.Pos) {
		t.Error("different seeds produced identical jitter")
	}
}

func TestPaperCaseSizes(t *testing.T) {
	// §III.B: 54 000 / 265 302 / 1 062 882 / 3 456 000 atoms.
	wants := map[Case]int{
		Small:  54000,
		Medium: 265302,
		Large3: 1062882,
		Large4: 3456000,
	}
	for c, want := range wants {
		if got := c.Atoms(); got != want {
			t.Errorf("%v atoms = %d, want %d", c, got, want)
		}
	}
}

func TestCaseStrings(t *testing.T) {
	for _, c := range Cases {
		if c.String() == "" {
			t.Errorf("case %d has empty name", int(c))
		}
	}
	if Case(99).String() != "Case(99)" {
		t.Error("unknown case string wrong")
	}
	if Case(99).CellsPerSide() != 0 {
		t.Error("unknown case cells wrong")
	}
	if _, err := BuildCase(Case(99)); err == nil {
		t.Error("BuildCase must reject unknown case")
	}
}

func TestBuildSmallCase(t *testing.T) {
	if testing.Short() {
		t.Skip("54k atom build skipped in -short")
	}
	c, err := BuildCase(Small)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 54000 {
		t.Errorf("small case N = %d", c.N())
	}
}

func TestScaledCase(t *testing.T) {
	c, err := ScaledCase(6)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 2*6*6*6 {
		t.Errorf("scaled case N = %d", c.N())
	}
	// Same density as the real cases.
	rho := float64(c.N()) / c.Box.Volume()
	want := 2.0 / (FeLatticeConstant * FeLatticeConstant * FeLatticeConstant)
	if math.Abs(rho-want) > 1e-12 {
		t.Errorf("scaled density = %g, want %g", rho, want)
	}
}

func TestRemoveAtom(t *testing.T) {
	c := MustBuild(BCC, 3, 3, 3, 2.8665)
	n := c.N()
	p1 := c.Pos[1]
	if err := c.RemoveAtom(0); err != nil {
		t.Fatal(err)
	}
	if c.N() != n-1 || c.Pos[0] != p1 {
		t.Error("RemoveAtom broke ordering")
	}
	if err := c.RemoveAtom(-1); err == nil {
		t.Error("negative index accepted")
	}
	if err := c.RemoveAtom(c.N()); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestAddVacancies(t *testing.T) {
	c := MustBuild(BCC, 4, 4, 4, 2.8665)
	n := c.N()
	removed, err := c.AddVacancies(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != n-5 || len(removed) != 5 {
		t.Errorf("vacancies: N=%d removed=%d", c.N(), len(removed))
	}
	// Deterministic.
	c2 := MustBuild(BCC, 4, 4, 4, 2.8665)
	removed2, _ := c2.AddVacancies(5, 7)
	for i := range removed {
		if removed[i] != removed2[i] {
			t.Fatal("AddVacancies not deterministic")
		}
	}
	if _, err := c.AddVacancies(-1, 1); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := c.AddVacancies(c.N()+1, 1); err == nil {
		t.Error("too many vacancies accepted")
	}
}

func TestAddInterstitialAndSites(t *testing.T) {
	c := MustBuild(BCC, 3, 3, 3, 2.8665)
	n := c.N()
	site := OctahedralSite(1, 1, 1, 2.8665)
	c.AddInterstitial(site)
	if c.N() != n+1 {
		t.Error("interstitial not added")
	}
	if !c.Box.Contains(c.Pos[n]) {
		t.Error("interstitial not wrapped into cell")
	}
	// The octahedral site sits a/2 from its nearest lattice atoms.
	idx, d := c.Clone().NearestAtom(site)
	if idx < 0 {
		t.Fatal("NearestAtom failed")
	}
	_ = d // distance includes the interstitial itself in the clone; check original instead
	orig := MustBuild(BCC, 3, 3, 3, 2.8665)
	_, d0 := orig.NearestAtom(site)
	if math.Abs(d0-2.8665/2) > 1e-9 {
		t.Errorf("octahedral site nearest distance = %g, want %g", d0, 2.8665/2)
	}
	empty := &Config{Box: c.Box}
	if idx, _ := empty.NearestAtom(site); idx != -1 {
		t.Error("empty config NearestAtom must return -1")
	}
}
